"""repro.engine — vectorized, format-agnostic arithmetic execution engine.

The edge-inference pitch of Sections IV-V, made fast: every <= 16-bit
format's behaviour is precomputed into lookup tables exactly once
(process-wide :mod:`registry <repro.engine.registry>`, optionally persisted
to disk), and all tensor arithmetic then runs as bulk integer indexing and
float64 re-encoding — the ApproxTrain/ProxSim architecture, generalized
over posits, IEEE-style softfloats, LNS and approximate multipliers behind
one :class:`Backend <repro.engine.backend.Backend>` protocol.  Wider
formats (posit<32,2>, binary32) skip the tables entirely: the ``wide``
strategy of :mod:`repro.engine.wide` decodes and encodes by bit-parallel
field extraction on whole code arrays.

Quickstart::

    import numpy as np
    from repro.engine import backend_for
    from repro.posit import POSIT8

    be = backend_for(POSIT8)           # tables built once, then cached
    a = be.encode(np.linspace(-4, 4, 8))
    b = be.encode(np.full(8, 0.5))
    print(be.decode(be.mul(a, b)))     # correctly rounded posit products
    print(be.counters)                 # per-op observability

Batched inference with observability::

    from repro.engine import BatchedRunner
    from repro.nn.posit_inference import PositQuantizedNetwork

    qnet = PositQuantizedNetwork(net, POSIT8)   # executes through the engine
    runner = BatchedRunner(qnet, batch_size=32)
    y = runner.run(x)
    print(runner.stats())              # items/s, per-op counters, table hits
"""

from .observe import (
    METRICS,
    TRACER,
    Histogram,
    Metrics,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_metrics,
    get_tracer,
    load_jsonl,
    report,
)
from .backend import Backend, OpCounters
from .faults import ChaosPlan, FaultPlan, FormatFaultModel, apply_code_faults
from .kernels import (
    lut_matmul,
    nonfinite_count,
    pairwise_lut,
    rounded_matmul,
    shard_rows,
    stable_matmul,
)
from .registry import (
    ENCODE_TABLE_TOP_BITS,
    REGISTRY,
    KernelRegistry,
    array_digest,
    enable_disk_cache,
    get_codec,
    get_encode_table,
    get_posit_tables,
)
from .wide import (
    MAX_WIDE_BITS,
    WideFloatCodec,
    WidePositCodec,
    get_wide_float_codec,
    get_wide_posit_codec,
)
from .posit_backend import CodecKernels, PositBackend
from .softfloat_backend import SoftFloatBackend, SoftFloatCodec, get_softfloat_codec
from .lns_backend import LNSBackend
from .approx_backend import ApproxMultiplierBackend, get_signed_lut
from .fused import FusedPlan
from .runner import BatchedRunner
from .parallel import (
    FusedPlanSpec,
    ModelHandle,
    ParallelRunner,
    PositNetworkSpec,
    shard_lut_matmul,
)

__all__ = [
    "Backend",
    "OpCounters",
    "Tracer",
    "Metrics",
    "Histogram",
    "TRACER",
    "METRICS",
    "get_tracer",
    "get_metrics",
    "enable_tracing",
    "disable_tracing",
    "load_jsonl",
    "report",
    "KernelRegistry",
    "REGISTRY",
    "array_digest",
    "enable_disk_cache",
    "get_codec",
    "get_encode_table",
    "ENCODE_TABLE_TOP_BITS",
    "get_posit_tables",
    "get_softfloat_codec",
    "MAX_WIDE_BITS",
    "WidePositCodec",
    "WideFloatCodec",
    "get_wide_posit_codec",
    "get_wide_float_codec",
    "get_signed_lut",
    "pairwise_lut",
    "lut_matmul",
    "rounded_matmul",
    "stable_matmul",
    "nonfinite_count",
    "FaultPlan",
    "ChaosPlan",
    "FormatFaultModel",
    "apply_code_faults",
    "PositBackend",
    "CodecKernels",
    "SoftFloatBackend",
    "SoftFloatCodec",
    "LNSBackend",
    "ApproxMultiplierBackend",
    "FusedPlan",
    "FusedPlanSpec",
    "BatchedRunner",
    "ParallelRunner",
    "PositNetworkSpec",
    "ModelHandle",
    "shard_rows",
    "shard_lut_matmul",
    "backend_for",
]


def backend_for(fmt, **kwargs):
    """Construct the right backend for a format descriptor.

    Dispatches on the descriptor type: :class:`repro.posit.PositFormat`,
    :class:`repro.floats.FloatFormat`, :class:`repro.lns.LNSFormat`, or an
    :class:`repro.approx.ApproxMultiplier` instance.  Keyword arguments are
    forwarded to the backend constructor (``counters``, ``registry``, ...).
    """
    from ..floats.format import FloatFormat
    from ..lns.format import LNSFormat
    from ..posit.format import PositFormat

    if isinstance(fmt, PositFormat):
        return PositBackend(fmt, **kwargs)
    if isinstance(fmt, FloatFormat):
        return SoftFloatBackend(fmt, **kwargs)
    if isinstance(fmt, LNSFormat):
        return LNSBackend(fmt, **kwargs)
    if hasattr(fmt, "multiply") and hasattr(fmt, "bits"):
        return ApproxMultiplierBackend(fmt, **kwargs)
    raise TypeError(f"no engine backend for format {fmt!r}")

"""Softfloat backend: bulk IEEE-style arithmetic for <= 32-bit formats.

New in the engine: :class:`SoftFloatCodec` tabulates a small float format's
code-to-value map (every <= 20-bit IEEE value is exact in float64,
subnormals included) and implements vectorized correctly rounded encode
(round to nearest, ties to even significand, overflow to infinity,
gradual underflow, signed zero).  The 20-bit table ceiling admits Intel's
FP19 {1,8,10} DSP-block format alongside binary16/bfloat16.

Elementwise ops use exhaustive pairwise tables built from the bit-exact
scalar :class:`repro.floats.softfloat.SoftFloat` model for <= 8-bit
formats, and the via-float strategy above that: float64 compute + one
correctly rounded re-encode, which is bit-exact for these widths (products
of <= 17-bit significands are exact in float64; sums are exact whenever the
rounding decision is in play, since a tie/midpoint case needs the operand
exponents within ``frac_bits + 2`` of each other, where the float64 sum is
exact — the innocuous-double-rounding regime ``53 >= 2p + 2``).

Above 20 bits the value table itself stops being buildable, so the third
strategy, ``wide``, swaps the tabulated codec for the bit-parallel
field-extraction codec of :mod:`repro.floats.vector` — same
decode/compute/encode datapath, still bit-exact as long as
``2 * precision + 2 <= 53``, which binary32 (p = 24) satisfies.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..floats.format import FloatFormat
from ..floats.softfloat import SoftFloat
from .backend import OpCounters, timed_op
from .faults import apply_code_faults
from .kernels import pairwise_lut
from .registry import REGISTRY, KernelRegistry
from .wide import MAX_WIDE_BITS, get_wide_float_codec

__all__ = ["SoftFloatCodec", "SoftFloatBackend"]

#: Widest format the tabulated codec (and hence via-float) supports.
_TABULATED_WIDTH = 20
#: Widest format pairwise 2-D tables support (2**32 entries at 16 bits).
_PAIRWISE_WIDTH = 16


def _build_value_table(fmt: FloatFormat) -> np.ndarray:
    """Exact float64 value of every code, vectorized.

    Bit-identical to looping ``SoftFloat(fmt, p).to_float()`` over all
    patterns (every <= 20-bit IEEE value is exact in float64; ``ldexp`` of
    an integer significand is exact; all NaN patterns map to +nan like the
    scalar model), but runs in microseconds instead of a python loop over
    up to 2**20 scalar constructions — what makes the 19-bit FP19 codec
    affordable.
    """
    n = 1 << fmt.width
    codes = np.arange(n, dtype=np.int64)
    sign = codes >> (fmt.width - 1)
    exp = (codes >> fmt.frac_bits) & fmt.exp_mask
    frac = codes & fmt.frac_mask
    # Normals: (2**frac_bits + frac) * 2**(exp - bias - frac_bits).
    mag = np.ldexp(
        ((1 << fmt.frac_bits) + frac).astype(np.float64),
        (exp - fmt.bias - fmt.frac_bits).astype(np.int32),
    )
    # Subnormals (exp field 0): frac * 2**(emin - frac_bits); includes +-0.
    mag = np.where(
        exp == 0,
        np.ldexp(frac.astype(np.float64), fmt.emin - fmt.frac_bits),
        mag,
    )
    values = np.where(sign == 1, -mag, mag)
    # Max exponent field: infinity (frac 0) or NaN (always +nan, like the
    # scalar model's math.nan).
    values = np.where((exp == fmt.exp_mask) & (frac == 0) & (sign == 1), -np.inf, values)
    values = np.where((exp == fmt.exp_mask) & (frac == 0) & (sign == 0), np.inf, values)
    values = np.where((exp == fmt.exp_mask) & (frac != 0), np.nan, values)
    return values


class SoftFloatCodec:
    """Bulk encode/decode between float64 arrays and small-float codes."""

    def __init__(self, fmt: FloatFormat, values: Optional[np.ndarray] = None):
        if fmt.width > 20:
            raise ValueError("tabulated codec supports at most 20-bit formats")
        self.fmt = fmt
        n = 1 << fmt.width
        if values is None:
            values = _build_value_table(fmt)
        else:
            values = np.asarray(values, dtype=np.float64)
            if values.shape != (n,):
                raise ValueError(f"prebuilt value table must have shape ({n},)")
        self.values = values

        # Sorted finite grid; drop the -0 code so 0.0 appears exactly once.
        finite = np.isfinite(values)
        finite[fmt.sign_bit] = False
        codes = np.arange(n)[finite]
        order = np.argsort(values[finite], kind="stable")
        self._sorted_values = values[finite][order]
        self._sorted_codes = codes[order]
        # Round-to-nearest overflow threshold: max_finite + half an ulp.
        self._overflow = fmt.max_finite + math.ldexp(1.0, fmt.emax - fmt.frac_bits - 1)

    # ------------------------------------------------------------------
    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Exact float64 value of each code (NaN patterns -> NaN)."""
        return self.values[np.asarray(codes, dtype=np.int64)]

    def encode(self, x: np.ndarray) -> np.ndarray:
        """Round a float64 array to codes: IEEE nearest, ties to even."""
        fmt = self.fmt
        x = np.asarray(x, dtype=np.float64)
        flat = x.ravel()

        sv, sc = self._sorted_values, self._sorted_codes
        hi_idx = np.searchsorted(sv, flat)
        hi_idx = np.clip(hi_idx, 1, len(sv) - 1)
        lo_idx = hi_idx - 1

        lo_val, hi_val = sv[lo_idx], sv[hi_idx]
        lo_code, hi_code = sc[lo_idx], sc[hi_idx]

        # Adjacent grid values are within a factor of 2, so both distances
        # are exact (Sterbenz) and the tie test is reliable.
        d_lo = np.abs(flat - lo_val)
        d_hi = np.abs(hi_val - flat)
        pick_hi = d_hi < d_lo
        tie = d_hi == d_lo
        pick_hi = np.where(tie, (lo_code & 1) == 1, pick_hi)
        out = np.where(pick_hi, hi_code, lo_code)

        # Range ends, then IEEE overflow to infinity at max_finite + ulp/2.
        out = np.where(flat >= sv[-1], sc[-1], out)
        out = np.where(flat <= sv[0], sc[0], out)
        out = np.where(flat >= self._overflow, fmt.pattern_inf, out)
        out = np.where(flat <= -self._overflow, fmt.sign_bit | fmt.pattern_inf, out)
        # Signed zero: a zero result keeps the sign of the input value.
        out = np.where((out == 0) & np.signbit(flat), fmt.sign_bit, out)
        out = np.where(np.isnan(flat), fmt.pattern_quiet_nan, out)
        return out.reshape(x.shape)

    def quantize(self, x: np.ndarray) -> np.ndarray:
        """Round-trip: the nearest grid value of each element."""
        return self.decode(self.encode(x))


def get_softfloat_codec(
    fmt: FloatFormat, registry: Optional[KernelRegistry] = None
) -> SoftFloatCodec:
    """The shared :class:`SoftFloatCodec` for ``fmt`` (registry-memoized)."""
    reg = registry if registry is not None else REGISTRY
    key = ("float", fmt.exp_bits, fmt.frac_bits, "codec")

    def factory() -> SoftFloatCodec:
        values = reg.get(
            ("float", fmt.exp_bits, fmt.frac_bits, "values"),
            lambda: {"values": SoftFloatCodec(fmt).values},
        )["values"]
        return SoftFloatCodec(fmt, values=values)

    return reg.get_object(key, factory)


def _build_float_pair_tables(fmt: FloatFormat) -> dict:
    if fmt.width > _PAIRWISE_WIDTH:
        raise ValueError(
            f"pairwise tables support at most {_PAIRWISE_WIDTH}-bit formats "
            f"(a {fmt.width}-bit table would need 2**{2 * fmt.width} entries)"
        )
    n = 1 << fmt.width
    floats = [SoftFloat(fmt, p) for p in range(n)]
    dtype = np.uint8 if fmt.width <= 8 else np.uint16 if fmt.width <= 16 else np.uint32
    add = np.empty((n, n), dtype=dtype)
    mul = np.empty((n, n), dtype=dtype)
    for i, a in enumerate(floats):
        for j in range(i, n):
            s = a.add(floats[j]).pattern
            m = a.mul(floats[j]).pattern
            add[i, j] = add[j, i] = s  # both ops commute (canonical NaN)
            mul[i, j] = mul[j, i] = m
    return {"add": add, "mul": mul}


class SoftFloatBackend:
    """Vectorized IEEE-style arithmetic for formats up to 32 bits."""

    def __init__(
        self,
        fmt: FloatFormat,
        counters: Optional[OpCounters] = None,
        registry: Optional[KernelRegistry] = None,
        table_bits: int = 8,
        strategy: Optional[str] = None,
        fault_plan=None,
    ):
        if fmt.width > MAX_WIDE_BITS:
            raise ValueError(
                f"SoftFloatBackend supports at most {MAX_WIDE_BITS}-bit formats"
            )
        if strategy is None:
            if fmt.width <= table_bits:
                strategy = "pairwise"
            elif fmt.width <= _TABULATED_WIDTH:
                strategy = "via-float"
            else:
                strategy = "wide"
        if strategy not in ("pairwise", "via-float", "wide"):
            raise ValueError(f"unknown strategy {strategy!r}")
        if strategy == "pairwise" and fmt.width > _PAIRWISE_WIDTH:
            raise ValueError(
                f"strategy 'pairwise' supports at most {_PAIRWISE_WIDTH}-bit "
                f"formats; use 'via-float' (<= {_TABULATED_WIDTH} bits) or "
                f"'wide' for {fmt}"
            )
        if strategy == "via-float" and fmt.width > _TABULATED_WIDTH:
            raise ValueError(
                f"strategy 'via-float' needs a tabulated codec "
                f"(<= {_TABULATED_WIDTH} bits); use strategy='wide' for {fmt}"
            )
        if strategy == "wide" and 2 * fmt.precision + 2 > 53:
            raise ValueError(
                f"the wide strategy computes in float64, which is only "
                f"bit-exact while 2 * precision + 2 <= 53 (got precision "
                f"{fmt.precision} for {fmt})"
            )
        self.fmt = fmt
        self.name = f"{fmt.name}{{1,{fmt.exp_bits},{fmt.frac_bits}}}"
        self.key = ("float", fmt.exp_bits, fmt.frac_bits)
        self.strategy = strategy
        self.counters = counters if counters is not None else OpCounters()
        self._registry = registry if registry is not None else REGISTRY
        # The wide codec is table-free; the others share the registry's
        # 2**width value table.
        self.codec = (
            get_wide_float_codec(fmt, self._registry)
            if strategy == "wide"
            else get_softfloat_codec(fmt, self._registry)
        )
        self._code_dtype = (
            np.uint8 if fmt.width <= 8 else np.uint16 if fmt.width <= 16 else np.uint32
        )
        if strategy == "pairwise":
            tables = self._registry.get(
                ("float", fmt.exp_bits, fmt.frac_bits, "addmul"),
                lambda: _build_float_pair_tables(fmt),
            )
            self.add_table, self.mul_table = tables["add"], tables["mul"]
        else:
            self.add_table = self.mul_table = None
        #: Width of one code word — the bit-flip domain for fault injection.
        self.code_bits = fmt.width
        #: Optional :class:`repro.engine.faults.FaultPlan` corrupting op outputs.
        self.fault_plan = fault_plan

    def _fault(self, op: str, codes: np.ndarray) -> np.ndarray:
        return apply_code_faults(self.fault_plan, self.name, op, codes, self.code_bits)

    # ------------------------------------------------------------------
    def encode(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        with timed_op(self.counters, "encode", x.size, fmt=self.name):
            return self.codec.encode(x).astype(self._code_dtype)

    def decode(self, codes: np.ndarray) -> np.ndarray:
        codes = np.asarray(codes)
        with timed_op(self.counters, "decode", codes.size, fmt=self.name):
            return self.codec.decode(codes)

    def quantize(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        with timed_op(self.counters, "quantize", x.size, fmt=self.name):
            return self.codec.quantize(x)

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a, b = np.asarray(a), np.asarray(b)
        with timed_op(self.counters, "add", max(a.size, b.size), fmt=self.name):
            if self.add_table is not None:
                return self._fault("add", pairwise_lut(self.add_table, a, b))
            with np.errstate(invalid="ignore"):  # inf - inf -> NaN -> qNaN code
                out = self.codec.decode(a) + self.codec.decode(b)
            return self._fault("add", self.codec.encode(out).astype(self._code_dtype))

    def mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a, b = np.asarray(a), np.asarray(b)
        with timed_op(self.counters, "mul", max(a.size, b.size), fmt=self.name):
            if self.mul_table is not None:
                return self._fault("mul", pairwise_lut(self.mul_table, a, b))
            with np.errstate(invalid="ignore"):  # inf * 0 -> NaN -> qNaN code
                out = self.codec.decode(a) * self.codec.decode(b)
            return self._fault("mul", self.codec.encode(out).astype(self._code_dtype))

    def matmul(self, a: np.ndarray, b: np.ndarray, accumulate: str = "float64") -> np.ndarray:
        """``(M, K) @ (K, N)``: Kulisch-style float64 accumulation.

        Products are exact in float64 for any format with precision <= 26
        (two p-bit significands multiply into 2p bits; binary32's p = 24
        gives 48 <= 53); the 53-bit accumulator plays the role of a
        (finite) Kulisch accumulator, and the result is rounded into the
        format once.
        """
        a, b = np.asarray(a), np.asarray(b)
        if accumulate != "float64":
            raise ValueError("SoftFloatBackend supports accumulate='float64' only")
        with timed_op(self.counters, "matmul[float64]", a.shape[0] * a.shape[1] * b.shape[1], fmt=self.name):
            out = self.codec.decode(a) @ self.codec.decode(b)
            return self._fault("matmul", self.codec.encode(out).astype(self._code_dtype))

    def dot_exact(self, a: np.ndarray, b: np.ndarray) -> int:
        """Exactly accumulated dot product (Kulisch), rounded once."""
        from fractions import Fraction

        a_flat = np.asarray(a).ravel()
        b_flat = np.asarray(b).ravel()
        with timed_op(self.counters, "dot_exact", a_flat.size, fmt=self.name):
            acc = Fraction(0)
            inf_sign = None  # sign of an infinite partial product, if any
            for pa, pb in zip(a_flat, b_flat):
                fa = SoftFloat(self.fmt, int(pa))
                fb = SoftFloat(self.fmt, int(pb))
                if fa.is_nan() or fb.is_nan():
                    return self.fmt.pattern_quiet_nan
                if fa.is_inf() or fb.is_inf():
                    if fa.is_zero() or fb.is_zero():
                        return self.fmt.pattern_quiet_nan  # inf * 0
                    sign = fa.sign ^ fb.sign
                    if inf_sign is not None and inf_sign != sign:
                        return self.fmt.pattern_quiet_nan  # inf - inf
                    inf_sign = sign
                    continue
                acc += fa.to_fraction() * fb.to_fraction()
            if inf_sign is not None:
                return SoftFloat.inf(self.fmt, inf_sign).pattern
            return SoftFloat.from_fraction(self.fmt, acc).pattern

    def __repr__(self):
        return f"SoftFloatBackend({self.name}, strategy={self.strategy!r})"

"""Parallel sharded execution: process-pool fan-out for the engine.

:class:`ParallelRunner` shards a request array into contiguous,
batch-aligned chunks and executes them on a persistent pool of worker
processes (``spawn`` context by default), merging per-chunk outputs back
in index order.  Because every chunk boundary falls on a multiple of
``batch_size``, each worker runs *exactly* the micro-batches the
single-process :class:`repro.engine.runner.BatchedRunner` would have run,
so the merged output is bit-identical to the in-process path — parallelism
never changes the numerics, only the wall clock.

Kernel tables are shared through the registry's ``.npz`` disk cache
instead of being rebuilt per worker: the parent flushes its resident
tables (:meth:`KernelRegistry.flush_to_disk`), and each worker's
process-wide registry is pointed at the same directory during pool
initialization, so worker-side backend construction *loads* prebuilt
tables (``disk_loads`` ticks up) rather than re-running the
O(4**nbits) scalar builders.

Robustness: a worker crash (``BrokenProcessPool``) or per-task timeout
degrades gracefully in stages — failed chunks are first *retried* on the
pool (``task_retries`` resubmissions, with up to ``pool_restarts`` pool
rebuilds after a crash) and only then recomputed in-process with identical
math (``fallback=True``, the default).  Every terminal fallback is counted
in ``stats()["fallbacks"]`` and classified by cause in
``stats()["fallback_causes"]`` (``crash`` / ``timeout`` /
``retry_exhausted``).  A :class:`repro.engine.faults.ChaosPlan` passed as
``chaos`` injects deterministic worker crashes and slowdowns for testing
exactly this machinery, and a :class:`repro.engine.faults.FaultPlan` (given
as ``fault_plan`` or attached to the parent registry) rides the pool
initializer so workers corrupt tables and activations bit-identically to
the in-process path.

Models cross the process boundary as a picklable zero-argument *factory*.
A :class:`repro.nn.posit_inference.PositQuantizedNetwork` is automatically
converted to a :class:`PositNetworkSpec` (ship the float weights + format,
rebuild the quantized network worker-side against the shared table cache);
a :class:`repro.engine.fused.FusedPlan` becomes a :class:`FusedPlanSpec`
(ship the float network, recompile the plan worker-side); any other model
is shipped by value via :class:`ModelHandle`.

Fused plans additionally switch the *data* transport: instead of pickling
float64 chunks through the pool's pipes, the parent encodes the input once
and publishes the code array — 1/8th the bytes at 8 bits — plus a shared
float64 output buffer as :mod:`multiprocessing.shared_memory` segments.
Workers map views and write their spans in place (no result pickling at
all); span boundaries stay batch-aligned, and encode is elementwise, so
the shared-memory path is byte-identical to both the pickling path and the
single-process runner.  The parent owns segment lifetime: every segment it
creates is tracked and both closed *and* unlinked in a ``finally`` (and
re-swept by :meth:`ParallelRunner.close` / ``__del__``), while workers
explicitly deregister their attachments from :mod:`multiprocessing`'s
resource tracker — Python registers shared memory on *attach* as well as
create, and letting that stand would have a worker's exit handler unlink a
segment the parent still owns.  Crashed or timed-out spans are recomputed
by the parent directly into the output buffer; a zombie worker that wakes
up later and rewrites the same span is harmless because bit-identity
guarantees it writes the same bytes.

:func:`shard_lut_matmul` applies the same recipe to one tiled LUT matmul:
row spans of ``A`` fan out over a short-lived pool (the LUT and ``B`` ride
the pool initializer once, not per task) and the row blocks concatenate
back in order — exact integer accumulation per row makes the sharded
product bit-identical to :func:`repro.engine.kernels.lut_matmul`.
"""

from __future__ import annotations

import math
import os
import pickle
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import get_context, resource_tracker, shared_memory
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from .backend import OpCounters
from .fused import FusedPlan
from .kernels import lut_matmul, shard_rows
from .observe import TRACER
from .registry import REGISTRY, KernelRegistry

__all__ = [
    "ParallelRunner",
    "PositNetworkSpec",
    "FusedPlanSpec",
    "ModelHandle",
    "shard_lut_matmul",
]


# ----------------------------------------------------------------------
# Model factories (what actually crosses the process boundary)
# ----------------------------------------------------------------------
class PositNetworkSpec:
    """Picklable recipe for rebuilding a posit-quantized network worker-side.

    Ships only the float :class:`~repro.nn.network.Sequential` and the
    :class:`~repro.posit.format.PositFormat`; the worker reconstructs the
    quantized network through its own engine backend, whose codec/tables
    come from the shared registry disk cache instead of a rebuild.
    """

    def __init__(
        self,
        net,
        fmt,
        fault_plan=None,
        poison_audit: bool = False,
        stable_contractions: bool = False,
    ):
        self.net = net
        self.fmt = fmt
        self.fault_plan = fault_plan
        self.poison_audit = poison_audit
        self.stable_contractions = stable_contractions

    def __call__(self):
        from ..nn.posit_inference import PositQuantizedNetwork

        return PositQuantizedNetwork(
            self.net,
            self.fmt,
            fault_plan=self.fault_plan,
            poison_audit=self.poison_audit,
            stable_contractions=self.stable_contractions,
        )


class FusedPlanSpec:
    """Picklable recipe for recompiling a fused plan worker-side.

    Ships only the float network and format; the worker recompiles the
    plan against its own process-wide registry, so the codec tables and
    the encode LUT *load* from the shared disk cache instead of being
    rebuilt, and compiled stages (pre-encoded weights, scratch buffers)
    never cross the process boundary.
    """

    def __init__(self, net, fmt, stable_contractions: bool = False):
        self.net = net
        self.fmt = fmt
        self.stable_contractions = stable_contractions

    def __call__(self):
        from .fused import FusedPlan

        return FusedPlan.compile(
            self.net, self.fmt, stable_contractions=self.stable_contractions
        )


class ModelHandle:
    """Fallback factory: ship an arbitrary picklable model by value."""

    def __init__(self, model):
        self.model = model

    def __call__(self):
        return self.model


def _factory_for(model):
    """The cheapest picklable factory that reproduces ``model`` worker-side."""
    from ..nn.posit_inference import PositQuantizedNetwork

    if isinstance(model, PositQuantizedNetwork):
        return PositNetworkSpec(
            model.net,
            model.fmt,
            fault_plan=getattr(model, "fault_plan", None),
            poison_audit=getattr(model, "poison_audit", False),
            stable_contractions=getattr(model, "stable_contractions", False),
        )
    if isinstance(model, FusedPlan):
        return FusedPlanSpec(
            model.net, model.fmt, stable_contractions=model.stable_contractions
        )
    return ModelHandle(model)


# ----------------------------------------------------------------------
# Worker-process side
# ----------------------------------------------------------------------
#: Per-worker-process state, populated once by the pool initializer.
_WORKER: Dict[str, object] = {}

#: Distinguishes "span not delivered yet" from any legitimate payload
#: (the shared-memory transport's payload is a bare ``True``).
_PENDING = object()


def _worker_init(
    factory,
    cache_dir: Optional[str],
    trace: bool = False,
    fault_plan=None,
    chaos=None,
) -> None:
    if cache_dir is not None:
        REGISTRY.cache_dir = Path(cache_dir)
    if trace:
        TRACER.enabled = True
    if fault_plan is not None:
        # Table corruption re-derives from (plan, table bytes) in this
        # process — bit-identical to the parent's, never persisted to disk.
        REGISTRY.fault_plan = fault_plan
    _WORKER["fault_plan"] = fault_plan
    _WORKER["chaos"] = chaos
    _WORKER["model"] = factory()


def _worker_run(idx: int, chunk: np.ndarray, batch_size: int, attempt: int = 0):
    chaos = _WORKER.get("chaos")
    if chaos is not None:
        chaos.apply(idx, attempt)  # may crash (os._exit) or sleep
    model = _WORKER["model"]
    plan = _WORKER.get("fault_plan")
    t0 = time.perf_counter()
    with TRACER.span("worker.chunk", chunk=idx, shape=chunk.shape, attempt=attempt):
        outs = []
        for start in range(0, len(chunk), batch_size):
            batch = chunk[start : start + batch_size]
            if plan is not None:
                batch = plan.corrupt_floats(batch, "runner.batch")
            with TRACER.span("worker.batch", shape=(min(batch_size, len(chunk)),)):
                outs.append(model.forward(batch))
        out = np.concatenate(outs, axis=0)
    wall = time.perf_counter() - t0

    # Ship per-chunk counter/metric *deltas* (snapshot then clear) so the
    # parent can merge them without double counting across chunks.  The
    # trace buffer is drained the same way: span events recorded in this
    # worker ride home with the chunk and land in the parent's ring buffer.
    counters = getattr(getattr(model, "engine", None), "counters", None)
    metrics = counters.metrics.snapshot() if counters is not None else {}
    if counters is not None:
        counters.metrics.clear()
    stats = {
        "pid": os.getpid(),
        "items": int(len(chunk)),
        "batches": math.ceil(len(chunk) / batch_size),
        "wall_s": wall,
        "ops": metrics.get("ops", {}),
        "metrics": metrics,
        "trace": TRACER.drain() if TRACER.enabled else [],
        "table": REGISTRY.stats(),  # cumulative for this worker process
    }
    return idx, out, stats


def _attach_fused_shm(meta: Dict[str, dict]) -> Tuple[np.ndarray, np.ndarray]:
    """Map this run's (codes, out) shared-memory segments in the worker.

    Attachments are cached per segment-name pair — every span task of one
    ``run()`` reuses the same mapping, and a new run's names evict the old
    one.  Registration with the resource tracker is suppressed during the
    attach: Python registers shared memory on *attach* as well as create
    (3.8-3.12), spawn workers share the parent's tracker process, and a
    worker registration would make the tracker try to unlink — or drop the
    parent's own crash-safety registration for — segments the parent still
    owns (unregistering after the fact is no better: it removes the
    parent's entry from the shared tracker).
    """
    cache = _WORKER.setdefault("shm", {"names": None, "segs": []})
    names = (meta["codes"]["name"], meta["out"]["name"])
    if cache["names"] != names:
        for seg in cache["segs"]:
            try:
                seg.close()
            except BufferError:  # a stale view pins the old mapping
                pass
        segs = []
        register = resource_tracker.register
        resource_tracker.register = lambda name, rtype: None
        try:
            for name in names:
                segs.append(shared_memory.SharedMemory(name=name))
        finally:
            resource_tracker.register = register
        cache["names"] = names
        cache["segs"] = segs
    c_meta, o_meta = meta["codes"], meta["out"]
    codes = np.ndarray(
        tuple(c_meta["shape"]), dtype=np.dtype(c_meta["dtype"]), buffer=cache["segs"][0].buf
    )
    out = np.ndarray(tuple(o_meta["shape"]), dtype=np.float64, buffer=cache["segs"][1].buf)
    return codes, out


def _fused_worker_run(
    idx: int, meta: Dict[str, dict], span: Tuple[int, int], batch_size: int, attempt: int = 0
):
    """One span of a fused run: read codes from shared memory, write logits
    back in place.  The payload is just ``True`` — results never pickle."""
    chaos = _WORKER.get("chaos")
    if chaos is not None:
        chaos.apply(idx, attempt)  # may crash (os._exit) or sleep
    model = _WORKER["model"]
    codes, out = _attach_fused_shm(meta)
    s, e = span
    t0 = time.perf_counter()
    with TRACER.span("worker.fused_chunk", chunk=idx, span=(s, e), attempt=attempt):
        for start in range(s, e, batch_size):
            stop = min(start + batch_size, e)
            with TRACER.span("worker.batch", shape=(stop - start,)):
                out[start:stop] = model.forward_codes(codes[start:stop])
    wall = time.perf_counter() - t0
    counters = getattr(getattr(model, "engine", None), "counters", None)
    metrics = counters.metrics.snapshot() if counters is not None else {}
    if counters is not None:
        counters.metrics.clear()
    stats = {
        "pid": os.getpid(),
        "items": int(e - s),
        "batches": math.ceil((e - s) / batch_size),
        "wall_s": wall,
        "ops": metrics.get("ops", {}),
        "metrics": metrics,
        "trace": TRACER.drain() if TRACER.enabled else [],
        "table": REGISTRY.stats(),
    }
    return idx, True, stats


def _matmul_init(lut: np.ndarray, b_idx: np.ndarray, chunk: int, dtype) -> None:
    _WORKER["lut"] = lut
    _WORKER["b_idx"] = b_idx
    _WORKER["chunk"] = chunk
    _WORKER["dtype"] = dtype


def _matmul_run(idx: int, a_block: np.ndarray):
    return idx, lut_matmul(
        _WORKER["lut"],
        a_block,
        _WORKER["b_idx"],
        chunk=_WORKER["chunk"],
        dtype=_WORKER["dtype"],
    )


# ----------------------------------------------------------------------
# Parallel runner
# ----------------------------------------------------------------------
class ParallelRunner:
    """Shard inference batches across a process pool, bit-identically.

    Parameters:
        model: The model to run (used for the in-process fallback path and,
            unless ``model_factory`` is given, converted to a picklable
            factory for the workers).
        model_factory: Explicit picklable zero-arg callable building the
            worker-side model; overrides the automatic conversion.
        workers: Pool size; ``None`` means ``os.cpu_count()``.  ``<= 1``
            runs everything in-process (still through the same chunking).
        batch_size: Micro-batch size inside each chunk — the unit that
            guarantees bit-identity with :class:`BatchedRunner`.
        chunk_size: Items per worker task, rounded up to a multiple of
            ``batch_size``.  Default: one balanced span per worker.
        mp_context: ``"spawn"`` (default, portable and deterministic) or
            ``"fork"``/``"forkserver"``.
        cache_dir: Directory for the shared ``.npz`` table cache.  Defaults
            to the registry's configured cache dir; if neither exists a
            private temporary directory is created (and removed on
            :meth:`close`).
        task_timeout: Seconds to wait for one chunk before falling back.
        task_retries: Extra pool attempts per failed chunk before the
            in-process fallback (default 1: each chunk gets two chances on
            workers, then falls back).
        pool_restarts: How many times a crash-broken pool may be rebuilt
            across the runner's lifetime before it stays in-process.
        fallback: When true (default), worker crashes and timeouts are
            recovered by recomputing the affected chunks in-process; when
            false they raise.
        chaos: Optional :class:`repro.engine.faults.ChaosPlan` injecting
            deterministic worker crashes/slowdowns (tests only).
        fault_plan: Optional :class:`repro.engine.faults.FaultPlan` shipped
            to every worker (and applied to in-process fallback batches),
            so injected corruption is identical at any worker count.
            Defaults to the parent registry's attached plan, if any.
    """

    def __init__(
        self,
        model=None,
        *,
        model_factory=None,
        workers: Optional[int] = None,
        batch_size: int = 64,
        chunk_size: Optional[int] = None,
        mp_context: str = "spawn",
        cache_dir: Optional[os.PathLike] = None,
        task_timeout: Optional[float] = 120.0,
        task_retries: int = 1,
        pool_restarts: int = 1,
        fallback: bool = True,
        chaos=None,
        fault_plan=None,
        counters: Optional[OpCounters] = None,
        registry: Optional[KernelRegistry] = None,
    ):
        if model is None and model_factory is None:
            raise ValueError("ParallelRunner needs a model or a model_factory")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1 (or None for auto)")
        if task_retries < 0 or pool_restarts < 0:
            raise ValueError("task_retries and pool_restarts must be >= 0")
        self.workers = int(workers) if workers is not None else (os.cpu_count() or 1)
        self.batch_size = batch_size
        self.chunk_size = chunk_size
        self.mp_context = mp_context
        self.task_timeout = task_timeout
        self.task_retries = int(task_retries)
        self.pool_restarts = int(pool_restarts)
        self.fallback = fallback
        self.chaos = chaos
        self.counters = counters if counters is not None else OpCounters()
        self._registry = registry if registry is not None else REGISTRY
        self.fault_plan = (
            fault_plan if fault_plan is not None else self._registry.fault_plan
        )

        self._factory = model_factory if model_factory is not None else _factory_for(model)
        # Fail in the constructor, not inside a broken pool, if the factory
        # cannot cross the process boundary.
        if self.workers > 1:
            pickle.dumps(self._factory)
        self._local_model = model  # lazily built from the factory if None

        self._tmpdir: Optional[tempfile.TemporaryDirectory] = None
        self._owns_cache_dir = False
        if cache_dir is not None:
            self._cache_dir: Optional[Path] = Path(cache_dir)
        elif self._registry.cache_dir is not None:
            self._cache_dir = Path(self._registry.cache_dir)
        elif self.workers > 1:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-engine-cache-")
            self._cache_dir = Path(self._tmpdir.name)
            self._owns_cache_dir = True
        else:
            self._cache_dir = None

        self._pool: Optional[ProcessPoolExecutor] = None
        #: Shared-memory segments created by fused runs and not yet
        #: released; swept by the per-run ``finally`` and re-swept by
        #: :meth:`close` / ``__del__`` so no ``/dev/shm`` name outlives
        #: the runner even if a run is interrupted mid-flight.
        self._shm_segments: List[shared_memory.SharedMemory] = []
        #: Workers of crash-broken pools discarded mid-run without joining
        #: (joining there would stall the run); :meth:`close` reaps them.
        #: Snapshotted *before* the discarding shutdown, because
        #: ``Executor.shutdown`` drops its process references even with
        #: ``wait=False`` — a second ``shutdown(wait=True)`` joins nothing.
        self._dead_procs: List[object] = []
        self._broken = False
        self._fallbacks = 0
        self._fallback_causes: Dict[str, int] = {}
        self._restarts_used = 0
        self._retries = 0
        self._items = 0
        self._batches = 0
        self._wall = 0.0
        self._worker_items: Dict[int, Dict[str, float]] = {}
        self._worker_tables: Dict[int, Dict[str, int]] = {}

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self) -> Optional[ProcessPoolExecutor]:
        if self._broken or self.workers <= 1:
            return None
        if self._pool is None:
            if self._owns_cache_dir and self._tmpdir is None:
                # Reopening after close(): the private cache dir was
                # removed, so stage a fresh one for the new pool.
                self._tmpdir = tempfile.TemporaryDirectory(
                    prefix="repro-engine-cache-"
                )
                self._cache_dir = Path(self._tmpdir.name)
            if self._cache_dir is not None:
                # Share whatever the parent has already built.
                with TRACER.span("parallel.flush_tables", dir=str(self._cache_dir)):
                    self._registry.flush_to_disk(self._cache_dir)
            with TRACER.span("parallel.pool_init", workers=self.workers):
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers,
                    mp_context=get_context(self.mp_context),
                    initializer=_worker_init,
                    initargs=(
                        self._factory,
                        str(self._cache_dir) if self._cache_dir is not None else None,
                        TRACER.enabled,  # workers trace iff the parent does now
                        self.fault_plan,
                        self.chaos,
                    ),
                )
        return self._pool

    def _discard_pool(self) -> None:
        """Drop a crash-broken pool; :meth:`_ensure_pool` builds a fresh one."""
        if self._pool is not None:
            self._dead_procs.extend(
                (getattr(self._pool, "_processes", None) or {}).values()
            )
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def close(self) -> None:
        """Shut the pool down and remove any private temporary cache dir.

        Idempotent, and *joins* the worker processes (``wait=True``) so a
        long-lived parent — an asyncio server cycling runners across
        restarts — never accumulates orphaned spawn children.  The runner
        stays usable: the next :meth:`run` lazily rebuilds the pool (and a
        fresh private cache dir, when this runner owns one).
        """
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        for proc in self._dead_procs:
            proc.join(timeout=10.0)
        self._dead_procs.clear()
        for seg in list(self._shm_segments):
            self._release_segment(seg)
        if self._tmpdir is not None:
            try:
                self._tmpdir.cleanup()
            except OSError:
                pass
            self._tmpdir = None
            if self._owns_cache_dir:
                self._cache_dir = None

    def restart(self) -> None:
        """Close the pool and reset the crash budget for a fresh start.

        The serving layer calls this after chaos-driven degradation: a
        runner whose ``pool_restarts`` budget was spent stays in-process
        forever, while an explicitly restarted runner gets its full budget
        back on a brand-new pool.
        """
        self.close()
        self._broken = False
        self._restarts_used = 0

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _model(self):
        if self._local_model is None:
            self._local_model = self._factory()
        return self._local_model

    def _spans(self, total: int) -> List[Tuple[int, int]]:
        """Batch-aligned chunk spans; merging in order is bit-identical."""
        if total == 0:
            return []
        if self.chunk_size is None:
            n_batches = math.ceil(total / self.batch_size)
            per = math.ceil(n_batches / max(1, self.workers)) * self.batch_size
        else:
            per = math.ceil(self.chunk_size / self.batch_size) * self.batch_size
        return [(s, min(s + per, total)) for s in range(0, total, per)]

    def _run_span(self, x: np.ndarray, span: Tuple[int, int]) -> np.ndarray:
        """In-process execution of one chunk, micro-batched identically."""
        model = self._model()
        plan = self.fault_plan
        outs = []
        for start in range(span[0], span[1], self.batch_size):
            batch = x[start : min(start + self.batch_size, span[1])]
            if plan is not None:
                # Content-keyed corruption: identical to what a worker
                # running this same micro-batch would have injected.
                batch = plan.corrupt_floats(batch, "runner.batch")
            outs.append(model.forward(batch))
        return np.concatenate(outs, axis=0)

    def _dispatch(
        self,
        spans: List[Tuple[int, int]],
        worker_fn: Callable,
        task_args: Callable[[int], tuple],
        fallback_span: Callable[[int, Tuple[int, int]], object],
    ) -> List[object]:
        """The retry/restart/fallback ladder, transport-agnostic.

        ``worker_fn(i, *task_args(i), attempt)`` runs on the pool and must
        return ``(i, payload, worker_stats)``; ``fallback_span(i, span)``
        is the in-process recovery for spans the pool never delivered.
        Returns one payload per span (arrays for the pickling transport, a
        bare ``True`` for shared memory, where outputs land in place).
        """
        results: List[object] = [_PENDING] * len(spans)
        attempts = [0] * len(spans)
        last_cause: Dict[int, str] = {}
        max_attempts = 1 + self.task_retries
        pending = list(range(len(spans)))

        while pending:
            pool = None
            try:
                pool = self._ensure_pool()
            except Exception:
                if not self.fallback:
                    raise
                self._broken = True
            if pool is None:
                break  # no pool (or budget spent): everything left falls back

            futures = {}
            submitted_at = {}
            pool_broke = False
            try:
                for i in pending:
                    fut = pool.submit(worker_fn, i, *task_args(i), attempts[i])
                    futures[fut] = i
                    submitted_at[i] = time.perf_counter()
            except (BrokenProcessPool, RuntimeError):
                pool_broke = True
                if not self.fallback:
                    raise
            for i in pending:
                attempts[i] += 1
                last_cause.setdefault(i, "crash")  # unsubmitted == pool died
            for fut, i in futures.items():
                try:
                    idx, payload, wstats = fut.result(timeout=self.task_timeout)
                    results[idx] = payload
                    last_cause.pop(idx, None)
                    # Queue wait: turnaround minus the worker's own compute.
                    turnaround = time.perf_counter() - submitted_at[i]
                    self.counters.metrics.observe(
                        "parallel.queue_wait_s",
                        max(0.0, turnaround - wstats["wall_s"]),
                    )
                    self._absorb_worker_stats(wstats)
                except (BrokenProcessPool, TimeoutError, OSError) as err:
                    if isinstance(err, BrokenProcessPool):
                        pool_broke = True
                    if not self.fallback:
                        raise
                    last_cause[i] = (
                        "timeout" if isinstance(err, TimeoutError) else "crash"
                    )

            pending = [i for i in pending if results[i] is _PENDING]
            if pool_broke:
                self._discard_pool()
                if self._restarts_used < self.pool_restarts:
                    self._restarts_used += 1
                    self.counters.metrics.inc("parallel.pool_restarts")
                else:
                    self._broken = True  # budget spent: stay in-process
            retryable = [i for i in pending if attempts[i] < max_attempts]
            if len(retryable) < len(pending):
                pending = retryable  # the rest exhausted their attempts
            if pending and not self._broken:
                self._retries += len(pending)
                self.counters.metrics.inc("parallel.task_retries", len(pending))
            elif self._broken:
                break

        for i, span in enumerate(spans):
            if results[i] is _PENDING:  # never submitted, timed out, or crashed
                self._fallbacks += 1
                cause = last_cause.get(i, "crash")
                if attempts[i] >= max_attempts and self.task_retries > 0:
                    cause = "retry_exhausted"
                self._fallback_causes[cause] = self._fallback_causes.get(cause, 0) + 1
                self.counters.metrics.inc(f"parallel.fallbacks.{cause}")
                results[i] = fallback_span(i, span)
        return results

    def _finish(self, t0: float, n_items: int, spans: List[Tuple[int, int]]) -> None:
        wall = time.perf_counter() - t0
        self._wall += wall
        self._items += n_items
        self._batches += sum(math.ceil((e - s) / self.batch_size) for s, e in spans)
        if TRACER.enabled:
            TRACER.record(
                "parallel.run",
                ts=t0 - TRACER.epoch,
                dur=wall,
                attrs={"items": n_items, "chunks": len(spans), "workers": self.workers},
            )

    def _fused_plan(self) -> Optional["FusedPlan"]:
        """The local fused plan when shared-memory transport applies.

        Requires a codes-entry :class:`FusedPlan` (directly or via a
        :class:`FusedPlanSpec` factory), more than one worker, and no
        fault plan — fault injection perturbs float micro-batches, which
        only the pickling transport carries.
        """
        if self.workers <= 1 or self.fault_plan is not None:
            return None
        model = self._local_model
        if model is None and isinstance(self._factory, FusedPlanSpec):
            model = self._model()
        if isinstance(model, FusedPlan) and model.input_rep == "codes":
            return model
        return None

    def run(self, x: np.ndarray) -> np.ndarray:
        """Shard ``x`` over the pool; returns outputs concatenated in order."""
        x = np.asarray(x)
        spans = self._spans(len(x))
        if not spans:
            return self._model().forward(x)
        plan = self._fused_plan()
        if plan is not None:
            return self._run_fused(plan, x, spans)
        t0 = time.perf_counter()
        results = self._dispatch(
            spans,
            _worker_run,
            lambda i: (x[spans[i][0] : spans[i][1]], self.batch_size),
            lambda i, span: self._run_span(x, span),
        )
        out = np.concatenate(results, axis=0)
        self._finish(t0, len(x), spans)
        return out

    __call__ = run

    # ------------------------------------------------------------------
    # Fused shared-memory transport
    # ------------------------------------------------------------------
    def _create_segment(self, size: int) -> shared_memory.SharedMemory:
        seg = shared_memory.SharedMemory(create=True, size=max(1, int(size)))
        self._shm_segments.append(seg)
        return seg

    def _release_segment(self, seg: shared_memory.SharedMemory) -> None:
        """Close and unlink one owned segment.  Never raises, never leaks
        the name: ``unlink`` runs even when a live numpy view still pins
        the mapping (the memory itself is freed when the view dies)."""
        try:
            seg.close()
        except BufferError:
            pass
        try:
            seg.unlink()
        except FileNotFoundError:
            pass
        try:
            self._shm_segments.remove(seg)
        except ValueError:
            pass

    def _run_fused(
        self, plan: "FusedPlan", x: np.ndarray, spans: List[Tuple[int, int]]
    ) -> np.ndarray:
        """Fused run: encode once, share codes + output buffer, no pickling."""
        t0 = time.perf_counter()
        codes = plan.encode_input(x)
        out_shape = (len(x),) + plan.output_shape
        seg_codes = self._create_segment(codes.nbytes)
        seg_out = self._create_segment(int(np.prod(out_shape, dtype=np.int64)) * 8)
        try:
            codes_view = np.ndarray(codes.shape, dtype=codes.dtype, buffer=seg_codes.buf)
            codes_view[...] = codes
            out_view = np.ndarray(out_shape, dtype=np.float64, buffer=seg_out.buf)
            meta = {
                "codes": {
                    "name": seg_codes.name,
                    "shape": tuple(codes.shape),
                    "dtype": codes.dtype.str,
                },
                "out": {"name": seg_out.name, "shape": out_shape},
            }

            def fallback(i, span):
                # Recompute straight into the output buffer, micro-batched
                # identically to a worker.  A zombie worker that finishes
                # after its timeout may rewrite the same span — harmless,
                # since bit-identity means it writes the same bytes.
                s, e = span
                for start in range(s, e, self.batch_size):
                    stop = min(start + self.batch_size, e)
                    out_view[start:stop] = plan.forward_codes(codes[start:stop])
                return True

            self._dispatch(
                spans,
                _fused_worker_run,
                lambda i: (meta, spans[i], self.batch_size),
                fallback,
            )
            result = np.array(out_view)  # own the bytes before unmapping
            del codes_view, out_view
        finally:
            self._release_segment(seg_codes)
            self._release_segment(seg_out)
        self._finish(t0, len(x), spans)
        return result

    def _absorb_worker_stats(self, wstats: Dict[str, object]) -> None:
        pid = int(wstats["pid"])
        acc = self._worker_items.setdefault(
            pid, {"items": 0, "batches": 0, "wall_s": 0.0}
        )
        acc["items"] += wstats["items"]
        acc["batches"] += wstats["batches"]
        acc["wall_s"] += wstats["wall_s"]
        self._worker_tables[pid] = dict(wstats["table"])
        metrics = wstats.get("metrics")
        if metrics:
            # Full metric snapshot (covers the op table) — merge once.
            self.counters.metrics.merge(metrics)
        else:
            self.counters.merge(wstats["ops"])
        TRACER.absorb(wstats.get("trace", ()))

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """BatchedRunner-shaped stats plus per-worker and fallback detail."""
        per_worker = [
            {
                "pid": pid,
                "items": int(acc["items"]),
                "batches": int(acc["batches"]),
                "wall_s": acc["wall_s"],
                "items_per_s": (acc["items"] / acc["wall_s"]) if acc["wall_s"] > 0 else 0.0,
            }
            for pid, acc in sorted(self._worker_items.items())
        ]
        parent = self._registry.stats()
        table_hits = parent["hits"] + sum(t["hits"] for t in self._worker_tables.values())
        table_misses = parent["misses"] + sum(
            t["misses"] for t in self._worker_tables.values()
        )
        disk_loads = parent["disk_loads"] + sum(
            t["disk_loads"] for t in self._worker_tables.values()
        )
        disk_writes = parent["disk_writes"] + sum(
            t.get("disk_writes", 0) for t in self._worker_tables.values()
        )
        integrity_failures = parent.get("integrity_failures", 0) + sum(
            t.get("integrity_failures", 0) for t in self._worker_tables.values()
        )
        disk_errors = parent.get("disk_errors", 0) + sum(
            t.get("disk_errors", 0) for t in self._worker_tables.values()
        )
        return {
            "items": self._items,
            "batches": self._batches,
            "batch_size": self.batch_size,
            "workers": self.workers,
            "wall_s": self._wall,
            "items_per_s": (self._items / self._wall) if self._wall > 0 else 0.0,
            "mean_batch_ms": (1e3 * self._wall / self._batches) if self._batches else 0.0,
            "ops": self.counters.snapshot(),
            "table_hits": table_hits,
            "table_misses": table_misses,
            "table_disk_loads": disk_loads,
            "table_disk_writes": disk_writes,
            "table_integrity_failures": integrity_failures,
            "table_disk_errors": disk_errors,
            "fallbacks": self._fallbacks,
            "fallback_causes": dict(self._fallback_causes),
            "task_retries": self._retries,
            "pool_restarts": self._restarts_used,
            "per_worker": per_worker,
            "metrics": self.counters.metrics.snapshot(),
        }

    def reset(self) -> None:
        """Clear throughput numbers and op counters (pool/registry kept)."""
        self._items = self._batches = 0
        self._wall = 0.0
        self._fallbacks = 0
        self._fallback_causes.clear()
        self._retries = 0
        self._worker_items.clear()
        self._worker_tables.clear()
        self.counters.clear()
        for name in ("parallel.queue_wait_s", "runner.batch_s"):
            self.counters.metrics.histograms.pop(name, None)

    def __repr__(self):
        return (
            f"ParallelRunner(workers={self.workers}, batch_size={self.batch_size}, "
            f"{self._items} items, {self._fallbacks} fallbacks)"
        )


# ----------------------------------------------------------------------
# Sharded LUT matmul
# ----------------------------------------------------------------------
def shard_lut_matmul(
    lut: np.ndarray,
    a_idx: np.ndarray,
    b_idx: np.ndarray,
    workers: int,
    chunk: int = 64,
    mp_context: str = "spawn",
    task_timeout: Optional[float] = 300.0,
    fallback: bool = True,
    dtype=np.int64,
) -> np.ndarray:
    """Row-sharded :func:`repro.engine.kernels.lut_matmul` across processes.

    ``A``'s rows are split into one contiguous block per worker; the LUT
    and ``B`` are shipped once via the pool initializer.  Exact integer
    accumulation is per-row, so concatenating the blocks in index order is
    bit-identical to the unsharded kernel.  Any pool failure (or
    ``workers <= 1``) falls back to the in-process kernel.
    """
    a_idx = np.asarray(a_idx)
    b_idx = np.asarray(b_idx)
    m = a_idx.shape[0]
    if workers <= 1 or m < 2:
        return lut_matmul(lut, a_idx, b_idx, chunk=chunk, dtype=dtype)
    spans = shard_rows(m, workers)
    blocks: List[Optional[np.ndarray]] = [None] * len(spans)
    try:
        with ProcessPoolExecutor(
            max_workers=min(workers, len(spans)),
            mp_context=get_context(mp_context),
            initializer=_matmul_init,
            initargs=(lut, b_idx, chunk, dtype),
        ) as pool:
            futures = {
                pool.submit(_matmul_run, i, a_idx[s:e]): i
                for i, (s, e) in enumerate(spans)
            }
            for fut, i in futures.items():
                try:
                    idx, block = fut.result(timeout=task_timeout)
                    blocks[idx] = block
                except (BrokenProcessPool, TimeoutError, OSError):
                    if not fallback:
                        raise
    except (BrokenProcessPool, RuntimeError, pickle.PicklingError):
        if not fallback:
            raise
        return lut_matmul(lut, a_idx, b_idx, chunk=chunk, dtype=dtype)
    for i, (s, e) in enumerate(spans):
        if blocks[i] is None:
            blocks[i] = lut_matmul(lut, a_idx[s:e], b_idx, chunk=chunk, dtype=dtype)
    return np.concatenate(blocks, axis=0)

"""The engine's backend contract and per-op observability counters.

A *backend* packages one number format's behaviour as bulk operations on
integer **code arrays**: ``encode`` rounds real values onto the format's
grid, ``decode`` recovers exact float64 values, and ``add``/``mul``/
``matmul``/``dot_exact`` apply the format's (correctly rounded or
behaviourally exact) arithmetic elementwise at numpy speed.  This is the
ApproxTrain/ProxSim architecture: precompute each narrow format's behaviour
once, then run all tensor arithmetic as bulk integer indexing.

Backends are duck-typed against :class:`Backend` (a ``typing.Protocol``);
concrete implementations live in the sibling ``*_backend`` modules and are
constructed through :func:`repro.engine.backend_for`.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Protocol, runtime_checkable

import numpy as np

__all__ = ["Backend", "OpCounters", "timed_op"]


class OpCounters:
    """Mutable per-operation counters: calls, elements processed, wall time.

    The seed of the engine's observability layer: every backend op records
    into one of these, and :class:`repro.engine.runner.BatchedRunner`
    snapshots them per inference batch.  Table (memo) hits and misses are
    tracked globally by :class:`repro.engine.registry.KernelRegistry`.
    """

    __slots__ = ("ops",)

    def __init__(self):
        self.ops: Dict[str, Dict[str, float]] = {}

    def record(self, op: str, elements: int, seconds: float) -> None:
        entry = self.ops.setdefault(op, {"calls": 0, "elements": 0, "seconds": 0.0})
        entry["calls"] += 1
        entry["elements"] += int(elements)
        entry["seconds"] += float(seconds)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """A deep copy of the current counters (safe to keep)."""
        return {op: dict(entry) for op, entry in self.ops.items()}

    def total(self, field: str = "elements") -> float:
        """Sum of one field over all ops (e.g. total elements executed)."""
        return sum(entry[field] for entry in self.ops.values())

    def merge(self, snapshot: Dict[str, Dict[str, float]]) -> None:
        """Fold another counters snapshot into this one.

        The parallel runner ships each worker's per-chunk counter deltas
        back to the parent and merges them here, so sharded execution
        reports through the same ``stats()`` shape as single-process runs.
        """
        for op, entry in snapshot.items():
            mine = self.ops.setdefault(op, {"calls": 0, "elements": 0, "seconds": 0.0})
            mine["calls"] += entry.get("calls", 0)
            mine["elements"] += int(entry.get("elements", 0))
            mine["seconds"] += float(entry.get("seconds", 0.0))

    def clear(self) -> None:
        self.ops.clear()

    def __repr__(self):
        parts = ", ".join(
            f"{op}: {int(e['calls'])} calls / {int(e['elements'])} elems"
            for op, e in sorted(self.ops.items())
        )
        return f"OpCounters({parts})"


class timed_op:
    """Context manager recording one op into an (optional) OpCounters."""

    __slots__ = ("counters", "op", "elements", "_t0")

    def __init__(self, counters: Optional[OpCounters], op: str, elements: int):
        self.counters = counters
        self.op = op
        self.elements = elements

    def __enter__(self):
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc):
        if self.counters is not None:
            self.counters.record(self.op, self.elements, time.perf_counter() - self._t0)
        return False


@runtime_checkable
class Backend(Protocol):
    """Format-agnostic bulk arithmetic on integer code arrays.

    Implementations must be *closed* over their code space for ``add`` and
    ``mul`` (codes in, codes out) except where the format itself is open —
    the approximate-multiplier backend returns full-width integer products,
    mirroring the hardware MAC it models.
    """

    #: Human-readable backend name, e.g. ``"posit<8,0>"``.
    name: str
    #: Hashable format key, used by the kernel registry.
    key: tuple

    def encode(self, x: np.ndarray) -> np.ndarray:
        """Round real values onto the format grid; returns code array."""
        ...

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Exact float64 value of each code (NaR/NaN patterns -> NaN)."""
        ...

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise format addition on code arrays."""
        ...

    def mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise format multiplication on code arrays."""
        ...

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Matrix product of code arrays ``(M, K) @ (K, N)``."""
        ...

    def dot_exact(self, a: np.ndarray, b: np.ndarray):
        """Exactly accumulated dot product of two code vectors."""
        ...

"""The engine's backend contract and per-op observability counters.

A *backend* packages one number format's behaviour as bulk operations on
integer **code arrays**: ``encode`` rounds real values onto the format's
grid, ``decode`` recovers exact float64 values, and ``add``/``mul``/
``matmul``/``dot_exact`` apply the format's (correctly rounded or
behaviourally exact) arithmetic elementwise at numpy speed.  This is the
ApproxTrain/ProxSim architecture: precompute each narrow format's behaviour
once, then run all tensor arithmetic as bulk integer indexing.

Backends are duck-typed against :class:`Backend` (a ``typing.Protocol``);
concrete implementations live in the sibling ``*_backend`` modules and are
constructed through :func:`repro.engine.backend_for`.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Protocol, runtime_checkable

import numpy as np

from .observe import TRACER, Metrics

__all__ = ["Backend", "OpCounters", "timed_op"]


class OpCounters:
    """Per-operation counters: calls, elements processed, wall time.

    Compatibility shim over :class:`repro.engine.observe.Metrics`: the
    original flat ``{op: {calls, elements, seconds}}`` API is preserved
    verbatim (``record``/``snapshot``/``merge``/``total``/``clear`` and the
    ``.ops`` mapping), but every recording now also feeds the richer
    metrics registry underneath — per-op latency histograms and any named
    counters/gauges the execution layers add — exposed as ``.metrics``.
    Table (memo) hits and misses are tracked globally by
    :class:`repro.engine.registry.KernelRegistry`.
    """

    __slots__ = ("metrics",)

    def __init__(self, metrics: Optional[Metrics] = None):
        self.metrics = metrics if metrics is not None else Metrics()

    @property
    def ops(self) -> Dict[str, Dict[str, float]]:
        """The per-op ``{calls, elements, seconds}`` table (a copy)."""
        return self.metrics.op_table()

    def record(self, op: str, elements: int, seconds: float) -> None:
        self.metrics.record_op(op, elements, seconds)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """A deep copy of the current counters (safe to keep)."""
        return self.metrics.op_table()

    def total(self, field: str = "elements") -> float:
        """Sum of one field over all ops (e.g. total elements executed)."""
        return sum(entry[field] for entry in self.metrics.op_table().values())

    def merge(self, snapshot: Dict[str, Dict[str, float]]) -> None:
        """Fold another counters snapshot into this one.

        The parallel runner ships each worker's per-chunk counter deltas
        back to the parent and merges them here, so sharded execution
        reports through the same ``stats()`` shape as single-process runs.
        """
        self.metrics.merge_ops(snapshot)

    def clear(self) -> None:
        self.metrics.clear_ops()

    def __repr__(self):
        parts = ", ".join(
            f"{op}: {int(e['calls'])} calls / {int(e['elements'])} elems"
            for op, e in sorted(self.metrics.op_table().items())
        )
        return f"OpCounters({parts})"


class timed_op:
    """Context manager recording one op into an (optional) OpCounters.

    Also emits a span to the process-wide tracer when tracing is enabled,
    carrying the op name, element count and the backend's format name —
    this is how every backend ``__call__`` path shows up in a trace without
    per-backend instrumentation.
    """

    __slots__ = ("counters", "op", "elements", "fmt", "_t0", "_span")

    def __init__(
        self,
        counters: Optional[OpCounters],
        op: str,
        elements: int,
        fmt: Optional[str] = None,
    ):
        self.counters = counters
        self.op = op
        self.elements = elements
        self.fmt = fmt

    def __enter__(self):
        if TRACER.enabled:
            self._span = TRACER.span(self.op, fmt=self.fmt, elements=self.elements)
            self._span.__enter__()
        else:
            self._span = None
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc):
        dt = time.perf_counter() - self._t0
        if self.counters is not None:
            self.counters.record(self.op, self.elements, dt)
        if self._span is not None:
            self._span.__exit__(*exc)
        return False


@runtime_checkable
class Backend(Protocol):
    """Format-agnostic bulk arithmetic on integer code arrays.

    Implementations must be *closed* over their code space for ``add`` and
    ``mul`` (codes in, codes out) except where the format itself is open —
    the approximate-multiplier backend returns full-width integer products,
    mirroring the hardware MAC it models.
    """

    #: Human-readable backend name, e.g. ``"posit<8,0>"``.
    name: str
    #: Hashable format key, used by the kernel registry.
    key: tuple

    def encode(self, x: np.ndarray) -> np.ndarray:
        """Round real values onto the format grid; returns code array."""
        ...

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Exact float64 value of each code (NaR/NaN patterns -> NaN)."""
        ...

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise format addition on code arrays."""
        ...

    def mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise format multiplication on code arrays."""
        ...

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Matrix product of code arrays ``(M, K) @ (K, N)``."""
        ...

    def dot_exact(self, a: np.ndarray, b: np.ndarray):
        """Exactly accumulated dot product of two code vectors."""
        ...

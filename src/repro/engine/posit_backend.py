"""Posit backend: bulk posit arithmetic on code arrays.

Three op strategies, chosen per format width:

* ``pairwise`` (default for <= 8 bits): exhaustive 2-D behaviour tables
  built from the bit-exact scalar :class:`repro.posit.value.Posit` model —
  ground truth by construction, one fancy index per elementwise op.
* ``via-float`` (9..16 bits, where a pairwise table would be >= 4 GiB):
  decode codes to their exact float64 values, compute in float64, and
  re-encode through the codec's correctly rounded grid search.  This is
  bit-exact for these widths: any product of two <= 16-bit posits is exact
  in float64, and whenever a sum is *inexact* in float64 the discarded tail
  lies far below half a posit ulp, so the posit rounding is unaffected (a
  <= 16-bit posit sum needs more than 53 bits only when the operand scales
  differ by > 40, while the rounding decision happens within ~14 bits of
  the larger operand).
* ``wide`` (17..32 bits, where even the 2**nbits codec value table stops
  being buildable): the bit-parallel field-extraction codecs of
  :mod:`repro.engine.wide`.  add/mul run in *integer* significand
  arithmetic because float64 round-tripping is no longer bit-exact (a
  posit<32,2> product carries 56 significant bits; the
  innocuous-double-rounding condition ``53 >= 2p + 2`` fails at p = 28).

``matmul`` offers three accumulation modes: ``"float64"`` (products exact,
accumulation at 53-bit precision — the Kulisch-style model that
:mod:`repro.nn.posit_inference` uses), ``"quire"`` (a true exact quire per
output element, rounded once), and ``"rounded"`` (posit rounding after
every add — the no-quire datapath baseline).
"""

from __future__ import annotations

from typing import Callable, NamedTuple, Optional

import numpy as np

from ..posit import vector as pvec
from ..posit.format import PositFormat
from ..posit.quire import Quire
from ..posit.tensor import PositTable
from ..posit.value import Posit
from .backend import OpCounters, timed_op
from .faults import apply_code_faults
from .kernels import pairwise_lut, rounded_matmul, stable_matmul
from .registry import (
    ENCODE_TABLE_MAX_BITS,
    ENCODE_TABLE_TOP_BITS,
    KernelRegistry,
    get_codec,
    get_encode_table,
    get_posit_tables,
)
from .wide import MAX_WIDE_BITS, get_wide_posit_codec

__all__ = ["CodecKernels", "PositBackend"]


class CodecKernels(NamedTuple):
    """The fastest bit-identical (encode, decode) pair for one format.

    What :meth:`PositBackend.codec_kernels` hands the fused planner:
    ``encode(x) -> codes`` and ``decode(codes, out=None) -> float64``,
    each byte-equal to the backend's default codec on every input, plus
    the kernel names for plan introspection.  ``code_dtype`` is the
    narrowest unsigned dtype holding a code word (what crosses shared
    memory in the parallel fused path).
    """

    encode: Callable[[np.ndarray], np.ndarray]
    decode: Callable[..., np.ndarray]
    encode_kind: str
    decode_kind: str
    code_dtype: type

#: Widest format the tabulated (pairwise / via-float) strategies support;
#: beyond it the 2**nbits codec tables stop being buildable.
_TABULATED_BITS = 16


class PositBackend:
    """Vectorized posit arithmetic for formats up to 32 bits."""

    def __init__(
        self,
        fmt: PositFormat,
        counters: Optional[OpCounters] = None,
        registry: Optional[KernelRegistry] = None,
        table_bits: int = 8,
        strategy: Optional[str] = None,
        fault_plan=None,
        stable_contractions: bool = False,
    ):
        if fmt.nbits > MAX_WIDE_BITS:
            raise ValueError(
                f"PositBackend supports at most {MAX_WIDE_BITS}-bit posits"
            )
        if strategy is None:
            if fmt.nbits <= table_bits:
                strategy = "pairwise"
            elif fmt.nbits <= _TABULATED_BITS:
                strategy = "via-float"
            else:
                strategy = "wide"
        if strategy not in ("pairwise", "via-float", "wide"):
            raise ValueError(f"unknown strategy {strategy!r}")
        if strategy != "wide" and fmt.nbits > _TABULATED_BITS:
            raise ValueError(
                f"strategy {strategy!r} needs a tabulated codec "
                f"(<= {_TABULATED_BITS} bits); use strategy='wide' for {fmt}"
            )
        self.fmt = fmt
        self.name = f"posit<{fmt.nbits},{fmt.es}>"
        self.key = ("posit", fmt.nbits, fmt.es)
        self.strategy = strategy
        self.counters = counters if counters is not None else OpCounters()
        #: Registry the codec/tables came from — also where
        #: :meth:`codec_kernels` sources its specialized encode tables.
        self.registry = registry
        # The wide codec is table-free; tabulated strategies share the
        # registry's 2**nbits value/boundary tables.
        self.codec = (
            get_wide_posit_codec(fmt, registry)
            if strategy == "wide"
            else get_codec(fmt, registry)
        )
        self.tables: Optional[PositTable] = (
            get_posit_tables(fmt, registry) if strategy == "pairwise" else None
        )
        self._code_dtype = (
            np.uint8 if fmt.nbits <= 8 else np.uint16 if fmt.nbits <= 16 else np.uint32
        )
        #: Width of one code word — the bit-flip domain for fault injection.
        self.code_bits = fmt.nbits
        #: Optional :class:`repro.engine.faults.FaultPlan` corrupting op outputs.
        self.fault_plan = fault_plan
        #: When true, float64 contractions run through
        #: :func:`repro.engine.kernels.stable_matmul`, whose accumulation
        #: order is independent of batch composition — the property the
        #: serving layer needs to coalesce rows from unrelated requests
        #: while keeping every request's result byte-equal to solo
        #: execution.
        self.stable_contractions = bool(stable_contractions)

    def _fault(self, op: str, codes: np.ndarray) -> np.ndarray:
        return apply_code_faults(self.fault_plan, self.name, op, codes, self.code_bits)

    # ------------------------------------------------------------------
    # Codec
    # ------------------------------------------------------------------
    def encode(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        with timed_op(self.counters, "encode", x.size, fmt=self.name):
            return self.codec.encode(x).astype(self._code_dtype)

    def decode(self, codes: np.ndarray) -> np.ndarray:
        codes = np.asarray(codes)
        with timed_op(self.counters, "decode", codes.size, fmt=self.name):
            return self.codec.decode(codes)

    def quantize(self, x: np.ndarray) -> np.ndarray:
        """Round-trip: nearest posit-grid value of each element."""
        x = np.asarray(x, dtype=np.float64)
        with timed_op(self.counters, "quantize", x.size, fmt=self.name):
            return self.codec.quantize(x)

    # ------------------------------------------------------------------
    # Elementwise
    # ------------------------------------------------------------------
    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a, b = np.asarray(a), np.asarray(b)
        with timed_op(self.counters, "add", max(a.size, b.size), fmt=self.name):
            if self.tables is not None:
                return self._fault("add", pairwise_lut(self.tables.add_table, a, b))
            if self.strategy == "wide":
                # Integer datapath: float64 round-tripping double-rounds
                # above 16 bits.
                return self._fault(
                    "add", self.codec.add(a, b).astype(self._code_dtype)
                )
            return self._fault(
                "add",
                self.codec.encode(self.codec.decode(a) + self.codec.decode(b)).astype(
                    self._code_dtype
                ),
            )

    def mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a, b = np.asarray(a), np.asarray(b)
        with timed_op(self.counters, "mul", max(a.size, b.size), fmt=self.name):
            if self.tables is not None:
                return self._fault("mul", pairwise_lut(self.tables.mul_table, a, b))
            if self.strategy == "wide":
                return self._fault(
                    "mul", self.codec.mul(a, b).astype(self._code_dtype)
                )
            return self._fault(
                "mul",
                self.codec.encode(self.codec.decode(a) * self.codec.decode(b)).astype(
                    self._code_dtype
                ),
            )

    # ------------------------------------------------------------------
    # Contractions
    # ------------------------------------------------------------------
    def matmul(
        self, a: np.ndarray, b: np.ndarray, accumulate: str = "float64"
    ) -> np.ndarray:
        """``(M, K) @ (K, N)`` on code arrays; returns codes.

        ``accumulate``: ``"float64"`` (exact products, 53-bit accumulation,
        one posit rounding at the end), ``"quire"`` (exact accumulation per
        output, scalar — slow, for verification), or ``"rounded"`` (posit
        rounding after every add; needs the pairwise tables).
        """
        a, b = np.asarray(a), np.asarray(b)
        with timed_op(self.counters, f"matmul[{accumulate}]", a.shape[0] * a.shape[1] * b.shape[1], fmt=self.name):
            if accumulate == "float64":
                da, db = self.codec.decode(a), self.codec.decode(b)
                out = stable_matmul(da, db) if self.stable_contractions else da @ db
                return self._fault("matmul", self.codec.encode(out).astype(self._code_dtype))
            if accumulate == "quire":
                m, k = a.shape
                k2, n = b.shape
                out = np.empty((m, n), dtype=self._code_dtype)
                for i in range(m):
                    for j in range(n):
                        out[i, j] = self.dot_exact(a[i], b[:, j])
                return self._fault("matmul", out)
            if accumulate == "rounded":
                if self.tables is None:
                    raise ValueError(
                        "rounded accumulation needs pairwise tables "
                        f"(format {self.fmt} uses the {self.strategy} strategy)"
                    )
                return self._fault(
                    "matmul",
                    rounded_matmul(self.tables.add_table, self.tables.mul_table, a, b),
                )
            raise ValueError(f"unknown accumulation mode {accumulate!r}")

    def matmul_values(self, qa: np.ndarray, qb: np.ndarray) -> np.ndarray:
        """``QA @ QB`` on posit-grid *values* (float64 in, float64 out).

        The DNN inference path: operands are already on the posit grid
        (from :meth:`quantize`), products are exact in float64 for <= 16-bit
        formats, and the 53-bit accumulation models the quire.  The result
        stays in float64 so bias adds and activations run unquantized, and
        the next layer re-quantizes its input — exactly the semantics of
        :mod:`repro.nn.posit_inference`.
        """
        qa, qb = np.asarray(qa), np.asarray(qb)
        macs = qa.shape[0] * qa.shape[-1] * (qb.shape[-1] if qb.ndim > 1 else 1)
        with timed_op(self.counters, "matmul[values]", macs, fmt=self.name):
            if self.stable_contractions and qa.ndim == 2 and qb.ndim == 2:
                return stable_matmul(qa, qb)
            return qa @ qb

    # ------------------------------------------------------------------
    # Operator specialization (the fused path's kernel chooser)
    # ------------------------------------------------------------------
    def codec_kernels(self) -> CodecKernels:
        """The fastest encode/decode kernels bit-identical to this codec.

        Per-format specialization, chosen from the kernel registry — the
        software analogue of PAPER §II's FloPoCo paradigm (generate
        exactly the datapath the computation needs):

        * ``nbits <= 8`` — encode through a direct float64-bits LUT
          (:func:`repro.engine.registry.get_encode_table`; one gather
          instead of a boundary binary search), decode by value-table
          gather.
        * ``9..16`` — encode through the table-free bit-parallel kernel
          of :mod:`repro.posit.vector` when the format qualifies
          (``es <= 3``; bit-exact with the scalar model, like the
          codec's boundary search), decode by value-table gather.
        * ``17..32`` — the wide codec's own bit-parallel kernels, with
          in-place ``out=`` decode for scratch reuse.

        Every pair is byte-equal to ``(self.encode, self.decode)`` on all
        inputs — specialization is an execution strategy, never a
        numerics change.
        """
        fmt = self.fmt
        code_dtype = self._code_dtype
        if self.strategy == "wide":
            codec = self.codec

            def encode(x, _c=codec, _dt=code_dtype):
                return _c.encode(x).astype(_dt)

            return CodecKernels(
                encode, codec.decode, "wide-bitparallel", "wide-bitparallel", code_dtype
            )

        values = self.codec.values

        def decode(codes, out=None, _v=values):
            return np.take(_v, codes, out=out)

        if fmt.nbits <= ENCODE_TABLE_MAX_BITS:
            lut = get_encode_table(fmt, self.registry)
            shift = np.uint64(52 - ENCODE_TABLE_TOP_BITS)
            tail_mask = np.uint64((1 << (52 - ENCODE_TABLE_TOP_BITS)) - 1)

            def encode(x, _lut=lut, _sh=shift, _tm=tail_mask, _dt=code_dtype):
                bits = np.ascontiguousarray(x, dtype=np.float64).view(np.uint64)
                key = (bits >> _sh) << np.uint64(1)
                key |= (bits & _tm) != 0
                return np.take(_lut, key).astype(_dt, copy=False)

            return CodecKernels(encode, decode, "table-lut", "table-gather", code_dtype)
        if fmt.es <= pvec._MAX_WIDE_ES:

            def encode(x, _fmt=fmt, _dt=code_dtype):
                return pvec.vector_encode(_fmt, x).astype(_dt)

            return CodecKernels(
                encode, decode, "wide-bitparallel", "table-gather", code_dtype
            )

        def encode(x, _c=self.codec, _dt=code_dtype):
            return _c.encode(np.asarray(x, dtype=np.float64)).astype(_dt)

        return CodecKernels(
            encode, decode, "table-searchsorted", "table-gather", code_dtype
        )

    def dot_exact(self, a: np.ndarray, b: np.ndarray) -> int:
        """Quire dot product of two code vectors, rounded once (exact)."""
        a_flat = np.asarray(a).ravel()
        b_flat = np.asarray(b).ravel()
        with timed_op(self.counters, "dot_exact", a_flat.size, fmt=self.name):
            q = Quire(self.fmt)
            for pa, pb in zip(a_flat, b_flat):
                q.add_product(Posit(self.fmt, int(pa)), Posit(self.fmt, int(pb)))
            return q.to_posit().pattern

    def __repr__(self):
        return f"PositBackend({self.name}, strategy={self.strategy!r})"

"""Approximate-multiplier backend: Section IV's 8-bit cores as engine ops.

Unlike the closed number-format backends, an approximate-multiplier MAC is
an *open* datapath: int8 operands in, full-width integer products out,
exact int64 accumulation (the int32 accumulators of real accelerators never
saturate at these layer sizes).  ``encode``/``decode`` are the symmetric
linear quantization of :mod:`repro.nn.quantize`; ``mul``/``matmul`` go
through the multiplier's signed 256x256 behaviour table, registry-memoized
so every simulation of the same core shares one LUT.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .backend import OpCounters, timed_op
from .faults import apply_code_faults
from .kernels import lut_matmul, pairwise_lut
from .registry import REGISTRY, KernelRegistry

__all__ = ["ApproxMultiplierBackend", "get_signed_lut"]


def _build_signed_lut(mult) -> dict:
    """Signed behaviour table ``lut[a + 128, b + 128] ~ a * b`` for int8.

    The unsigned core multiplies magnitudes; the product sign is the XOR of
    the operand signs (the sign-magnitude envelope ProxSim-style flows use
    for unsigned EvoApprox cores).
    """
    a = np.arange(-128, 128, dtype=np.int64)
    b = np.arange(-128, 128, dtype=np.int64)
    av, bv = np.meshgrid(a, b, indexing="ij")
    mag = mult.multiply(np.abs(av), np.abs(bv))
    return {"lut": np.where((av < 0) ^ (bv < 0), -mag, mag).astype(np.int32)}


def get_signed_lut(mult, registry: Optional[KernelRegistry] = None) -> np.ndarray:
    """The signed int8 behaviour table for ``mult``, built once per core.

    Keyed by ``(class, name, bits)`` — multiplier names encode their
    parameters (``trunc4``, ``drum3``, ...), so equal-config cores share
    one table while ad-hoc subclasses that inherit a name do not collide.
    """
    reg = registry if registry is not None else REGISTRY
    key = ("approx", type(mult).__name__, mult.bits, mult.name, "signed_lut")
    return reg.get(key, lambda: _build_signed_lut(mult))["lut"]


class ApproxMultiplierBackend:
    """Engine backend over one approximate 8-bit multiplier core."""

    def __init__(
        self,
        mult,
        counters: Optional[OpCounters] = None,
        registry: Optional[KernelRegistry] = None,
        fault_plan=None,
    ):
        self.mult = mult
        self.name = f"approx[{mult.name}]"
        self.key = ("approx", type(mult).__name__, mult.bits, mult.name)
        self.counters = counters if counters is not None else OpCounters()
        self.lut = get_signed_lut(mult, registry)
        #: Product width: two ``bits``-wide operands -> up to ``2 * bits`` bits.
        self.code_bits = 2 * mult.bits
        #: Optional :class:`repro.engine.faults.FaultPlan` corrupting op outputs.
        self.fault_plan = fault_plan

    def _fault(self, op: str, codes: np.ndarray) -> np.ndarray:
        return apply_code_faults(self.fault_plan, self.name, op, codes, self.code_bits)

    # ------------------------------------------------------------------
    def encode(self, x: np.ndarray, scale: Optional[float] = None) -> np.ndarray:
        """Symmetric int8 linear quantization: ``clip(round(x / s), ±127)``."""
        x = np.asarray(x, dtype=np.float64)
        with timed_op(self.counters, "encode", x.size, fmt=self.name):
            if scale is None:
                scale = float(np.max(np.abs(x))) / 127.0 if x.size else 1.0
                if scale == 0.0:
                    scale = 1.0
            q = np.clip(np.round(x / scale), -127, 127).astype(np.int64)
            self.last_scale = scale
            return q

    def decode(self, q: np.ndarray, scale: float = 1.0) -> np.ndarray:
        with timed_op(self.counters, "decode", np.asarray(q).size, fmt=self.name):
            return np.asarray(q, dtype=np.float64) * scale

    # ------------------------------------------------------------------
    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Exact integer addition (adders are exact in Section IV's flow)."""
        a, b = np.asarray(a, dtype=np.int64), np.asarray(b, dtype=np.int64)
        with timed_op(self.counters, "add", max(a.size, b.size), fmt=self.name):
            return a + b

    def mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise approximate products through the behaviour table."""
        a, b = np.asarray(a, dtype=np.int64), np.asarray(b, dtype=np.int64)
        with timed_op(self.counters, "mul", max(a.size, b.size), fmt=self.name):
            return self._fault("mul", pairwise_lut(self.lut, a + 128, b + 128))

    def matmul(self, a: np.ndarray, b: np.ndarray, chunk: int = 64) -> np.ndarray:
        """``(M, K) @ (K, N)`` int8 matmul with approximate products."""
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        with timed_op(self.counters, "matmul", a.shape[0] * a.shape[1] * b.shape[1], fmt=self.name):
            return self._fault("matmul", lut_matmul(self.lut, a + 128, b + 128, chunk=chunk))

    def dot_exact(self, a: np.ndarray, b: np.ndarray) -> int:
        """Exact int64 sum of approximate products."""
        a_flat = np.asarray(a, dtype=np.int64).ravel()
        b_flat = np.asarray(b, dtype=np.int64).ravel()
        with timed_op(self.counters, "dot_exact", a_flat.size, fmt=self.name):
            return int(self.lut[a_flat + 128, b_flat + 128].sum(dtype=np.int64))

    def __repr__(self):
        return f"ApproxMultiplierBackend({self.mult.name})"

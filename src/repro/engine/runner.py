"""Batched inference runner with per-op observability counters.

:class:`BatchedRunner` micro-batches inference requests through any model
exposing ``forward(x) -> y`` (a :class:`repro.nn.network.Sequential`, a
:class:`repro.nn.posit_inference.PositQuantizedNetwork`, ...), timing each
micro-batch and aggregating the engine's per-op counters — the seed of an
observability layer for the serving path: every later scaling PR (sharding,
async, multi-backend dispatch) reports through the same ``stats()`` shape.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

import numpy as np

from .backend import OpCounters
from .observe import TRACER
from .registry import REGISTRY, KernelRegistry

__all__ = ["BatchedRunner"]


class BatchedRunner:
    """Run inference requests through a model in fixed-size micro-batches.

    ``workers`` > 1 shards the micro-batches across a process pool (see
    :class:`repro.engine.parallel.ParallelRunner`); chunk boundaries stay
    batch-aligned, so the sharded output is bit-identical to the
    single-process path.  ``parallel_opts`` forwards extra keyword
    arguments (``chunk_size``, ``mp_context``, ``cache_dir``,
    ``task_timeout``, ``fallback``) to the parallel layer.
    """

    def __init__(
        self,
        model,
        batch_size: int = 64,
        counters: Optional[OpCounters] = None,
        registry: Optional[KernelRegistry] = None,
        workers: Optional[int] = None,
        fault_plan=None,
        **parallel_opts,
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.model = model
        self.batch_size = batch_size
        #: Optional :class:`repro.engine.faults.FaultPlan` flipping bits in
        #: each micro-batch's raw float64 words before the model sees it.
        self.fault_plan = fault_plan
        # Adopt the model's engine counters when it has them, so backend ops
        # executed inside the model show up in this runner's stats.
        if counters is not None:
            self.counters = counters
        else:
            engine = getattr(model, "engine", None)
            self.counters = getattr(engine, "counters", None) or OpCounters()
        self._registry = registry if registry is not None else REGISTRY
        self.workers = workers
        self._parallel = None
        if workers is not None and workers > 1:
            from .parallel import ParallelRunner

            self._parallel = ParallelRunner(
                model,
                workers=workers,
                batch_size=batch_size,
                counters=self.counters,
                registry=self._registry,
                fault_plan=fault_plan,
                **parallel_opts,
            )
        elif parallel_opts:
            raise TypeError(
                f"parallel options {sorted(parallel_opts)} need workers > 1"
            )
        self._items = 0
        self._batches = 0
        self._wall = 0.0
        self._batch_wall: List[float] = []

    # ------------------------------------------------------------------
    def run(self, x: np.ndarray) -> np.ndarray:
        """Micro-batch ``x`` through the model; returns concatenated outputs."""
        x = np.asarray(x)
        if self._parallel is not None:
            return self._parallel.run(x)
        outs = []
        for start in range(0, len(x), self.batch_size):
            chunk = x[start : start + self.batch_size]
            if self.fault_plan is not None:
                # Content-keyed, so the parallel path injects identically.
                chunk = self.fault_plan.corrupt_floats(chunk, "runner.batch")
            t0 = time.perf_counter()
            with TRACER.span("runner.batch", batch=self._batches, shape=chunk.shape):
                outs.append(self.model.forward(chunk))
            dt = time.perf_counter() - t0
            self._wall += dt
            self._batch_wall.append(dt)
            self._batches += 1
            self._items += len(chunk)
            self.counters.metrics.observe("runner.batch_s", dt)
        return np.concatenate(outs, axis=0)

    __call__ = run

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the worker pool, if any (no-op for in-process runners)."""
        if self._parallel is not None:
            self._parallel.close()

    def restart(self) -> None:
        """Rebuild the worker pool with a fresh crash budget (see
        :meth:`repro.engine.parallel.ParallelRunner.restart`)."""
        if self._parallel is not None:
            self._parallel.restart()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Aggregated run statistics: throughput, per-op counters, cache."""
        if self._parallel is not None:
            return self._parallel.stats()
        reg = self._registry.stats()
        return {
            "items": self._items,
            "batches": self._batches,
            "batch_size": self.batch_size,
            "wall_s": self._wall,
            "items_per_s": (self._items / self._wall) if self._wall > 0 else 0.0,
            "mean_batch_ms": (
                1e3 * self._wall / self._batches if self._batches else 0.0
            ),
            "ops": self.counters.snapshot(),
            "table_hits": reg["hits"],
            "table_misses": reg["misses"],
            "table_disk_writes": reg["disk_writes"],
            "table_integrity_failures": reg.get("integrity_failures", 0),
            "metrics": self.counters.metrics.snapshot(),
        }

    def reset(self) -> None:
        """Clear throughput numbers and op counters (registry untouched)."""
        if self._parallel is not None:
            self._parallel.reset()
        self._items = self._batches = 0
        self._wall = 0.0
        self._batch_wall.clear()
        self.counters.clear()
        self.counters.metrics.histograms.pop("runner.batch_s", None)

    def __repr__(self):
        return (
            f"BatchedRunner(batch_size={self.batch_size}, "
            f"{self._items} items in {self._batches} batches)"
        )

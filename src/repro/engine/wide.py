"""Wide-format codec objects: bit-parallel kernels behind the codec API.

The backends' ``pairwise`` and ``via-float`` strategies both lean on
tabulated codecs, which caps posits at 16 bits and floats at 20.  The
``wide`` strategy wraps the table-free kernels of :mod:`repro.posit.vector`
and :mod:`repro.floats.vector` in objects API-compatible with
:class:`repro.posit.tensor.PositCodec` / :class:`SoftFloatCodec
<repro.engine.softfloat_backend.SoftFloatCodec>` — same
``encode``/``decode``/``quantize`` surface, so the backends (and
:class:`repro.nn.posit_inference.PositQuantizedNetwork` above them) drop in
posit<32,2> and binary32 without touching the callers.

There are no tables to build or persist: the registry memoizes only the
(stateless) wrapper object per format, and codes stay plain integer
arrays, so batching, sharding, golden-merge and fault injection all work
unchanged at 32 bits.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..floats import vector as fvec
from ..floats.format import FloatFormat
from ..posit import vector as pvec
from ..posit.format import PositFormat
from .observe import TRACER
from .registry import REGISTRY, KernelRegistry

__all__ = [
    "MAX_WIDE_BITS",
    "WidePositCodec",
    "WideFloatCodec",
    "get_wide_posit_codec",
    "get_wide_float_codec",
]

#: Widest code word either wide codec supports.
MAX_WIDE_BITS = 32


def _warm_allocator() -> None:
    """Raise glibc's dynamic malloc thresholds before the first kernel call.

    The wide kernels churn through ~80 KB temporaries.  With glibc's
    default (small) trim threshold, every free hands those pages back to
    the OS and every allocation page-faults them in again, which measures
    ~2.5x slower than the same kernels with warm buffers.  Freeing one
    mmap-sized block makes glibc ratchet its mmap/trim thresholds up past
    that size for the rest of the process, so kernel temporaries stay
    pooled in the heap.  A no-op (but harmless) on other allocators.
    """
    buf = np.empty(1_000_000, dtype=np.float64)  # 8 MB
    del buf


_warm_allocator()


class WidePositCodec:
    """Table-free posit codec for formats up to 32 bits.

    Drop-in for the tabulated :class:`repro.posit.tensor.PositCodec`
    (``encode``/``decode``/``quantize``/``quantization_error``), plus the
    code-domain :meth:`add`/:meth:`mul` kernels the via-float strategy
    cannot provide bit-exactly at these widths.
    """

    def __init__(self, fmt: PositFormat):
        pvec.check_wide_format(fmt)
        self.fmt = fmt

    def decode(self, codes: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Exact float64 values of the given codes (NaR -> NaN).

        ``out`` (optional, float64, same shape as ``codes``) receives the
        values in place — the fused path's scratch-buffer hook.  It may
        alias the storage behind ``codes``; field extraction completes
        before the first write.
        """
        return pvec.vector_decode(self.fmt, codes, out=out)

    def encode(self, x: np.ndarray) -> np.ndarray:
        """Round a float array to posit codes, bit-exact with the scalar model."""
        return pvec.vector_encode(self.fmt, x)

    def quantize(self, x: np.ndarray) -> np.ndarray:
        """Round-trip: the posit-grid value nearest to each element."""
        return self.decode(self.encode(x))

    def quantization_error(self, x: np.ndarray) -> float:
        """Max relative error of representing ``x`` on this posit grid."""
        q = self.quantize(x)
        nz = x != 0
        if not np.any(nz):
            return 0.0
        return float(np.max(np.abs((q[nz] - x[nz]) / x[nz])))

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Correctly rounded elementwise add on codes (integer datapath)."""
        with TRACER.span("wide.posit.add", fmt=str(self.fmt)):
            return pvec.add_codes(self.fmt, a, b)

    def mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Correctly rounded elementwise multiply on codes (integer datapath)."""
        with TRACER.span("wide.posit.mul", fmt=str(self.fmt)):
            return pvec.mul_codes(self.fmt, a, b)

    def __repr__(self):
        return f"WidePositCodec({self.fmt})"


class WideFloatCodec:
    """Table-free IEEE-style codec for formats up to 32 bits.

    Drop-in for :class:`repro.engine.softfloat_backend.SoftFloatCodec`:
    same ``encode``/``decode``/``quantize``.  Elementwise arithmetic stays
    in the backend (float64 compute + one re-encode), which is bit-exact
    whenever ``2 * precision + 2 <= 53`` — binary32 (p = 24) qualifies.
    """

    def __init__(self, fmt: FloatFormat):
        fvec.check_wide_format(fmt)
        self.fmt = fmt
        #: True when float64 compute + one re-encode is bit-exact for
        #: add/mul (Figueroa's innocuous-double-rounding bound).
        self.exact_via_float64 = 2 * fmt.precision + 2 <= 53

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Exact float64 value of each code (NaN patterns -> NaN)."""
        return fvec.vector_decode(self.fmt, codes)

    def encode(self, x: np.ndarray) -> np.ndarray:
        """Round a float64 array to codes: IEEE nearest, ties to even."""
        return fvec.vector_encode(self.fmt, x)

    def quantize(self, x: np.ndarray) -> np.ndarray:
        """Round-trip: the nearest grid value of each element."""
        return self.decode(self.encode(x))

    def __repr__(self):
        return f"WideFloatCodec({self.fmt})"


def get_wide_posit_codec(
    fmt: PositFormat, registry: Optional[KernelRegistry] = None
) -> WidePositCodec:
    """The shared :class:`WidePositCodec` for ``fmt`` (registry-memoized)."""
    reg = registry if registry is not None else REGISTRY
    return reg.get_object(
        ("posit", fmt.nbits, fmt.es, "wide-codec"), lambda: WidePositCodec(fmt)
    )


def get_wide_float_codec(
    fmt: FloatFormat, registry: Optional[KernelRegistry] = None
) -> WideFloatCodec:
    """The shared :class:`WideFloatCodec` for ``fmt`` (registry-memoized)."""
    reg = registry if registry is not None else REGISTRY
    return reg.get_object(
        ("float", fmt.exp_bits, fmt.frac_bits, "wide-codec"),
        lambda: WideFloatCodec(fmt),
    )

"""Procedural image-classification dataset (CIFAR stand-in)."""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["synthetic_images"]


def _grating(h, w, freq, angle, phase):
    yy, xx = np.mgrid[0:h, 0:w] / max(h, w)
    t = xx * np.cos(angle) + yy * np.sin(angle)
    return np.sin(2 * np.pi * freq * t + phase)


def _blobs(h, w, cx, cy, sigma):
    yy, xx = np.mgrid[0:h, 0:w] / max(h, w)
    return np.exp(-(((xx - cx) ** 2 + (yy - cy) ** 2) / (2 * sigma**2)))


def _checker(h, w, freq, phase):
    yy, xx = np.mgrid[0:h, 0:w] / max(h, w)
    return np.sign(np.sin(2 * np.pi * freq * xx + phase) * np.sin(2 * np.pi * freq * yy + phase))


def synthetic_images(
    n_per_class: int,
    classes: int = 10,
    size: int = 16,
    channels: int = 3,
    noise: float = 0.35,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate a class-conditional texture dataset.

    Each class owns a texture family (orientation x frequency x kind) whose
    parameters jitter per sample; additive Gaussian noise keeps the task
    non-trivial.  Returns ``(x, y)`` with ``x`` of shape
    ``(N, channels, size, size)`` in [-1, 1] and integer labels ``y``.
    """
    rng = np.random.default_rng(seed)
    n = n_per_class * classes
    x = np.zeros((n, channels, size, size), dtype=np.float64)
    y = np.zeros(n, dtype=np.int64)

    for cls in range(classes):
        kind = cls % 3
        base_angle = (cls // 3) * (np.pi / 4) + 0.2 * cls
        base_freq = 2.0 + (cls % 5)
        for i in range(n_per_class):
            idx = cls * n_per_class + i
            y[idx] = cls
            angle = base_angle + rng.normal(0, 0.12)
            freq = base_freq * rng.uniform(0.9, 1.1)
            phase = rng.uniform(0, 2 * np.pi)
            if kind == 0:
                img = _grating(size, size, freq, angle, phase)
            elif kind == 1:
                cx = 0.3 + 0.4 * ((cls * 7) % 5) / 4 + rng.normal(0, 0.04)
                cy = 0.3 + 0.4 * ((cls * 3) % 5) / 4 + rng.normal(0, 0.04)
                img = 2 * _blobs(size, size, cx, cy, 0.12 + 0.02 * (cls % 3)) - 1
            else:
                img = _checker(size, size, freq / 2 + 1, phase)
            for ch in range(channels):
                gain = 1.0 - 0.25 * ch * ((cls % 4) / 3)
                x[idx, ch] = gain * img + noise * rng.normal(size=(size, size))
    x = np.clip(x, -2.5, 2.5) / 2.5
    order = rng.permutation(n)
    return x[order], y[order]

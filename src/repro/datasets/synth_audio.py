"""Procedural keyword-spotting dataset (Speech Commands stand-in)."""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["synthetic_keywords", "spectrogram_features"]


def synthetic_keywords(
    n_per_class: int,
    classes: int = 8,
    samples: int = 2048,
    noise: float = 0.4,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate waveforms with class-specific spectral signatures.

    Each class is a short sequence of tones/chirps (a synthetic "keyword"),
    time-jittered and embedded in noise.  Returns ``(waveforms, labels)``
    with waveforms of shape ``(N, samples)``.
    """
    rng = np.random.default_rng(seed)
    n = n_per_class * classes
    x = np.zeros((n, samples), dtype=np.float64)
    y = np.zeros(n, dtype=np.int64)

    for cls in range(classes):
        # A class is 3 segments, each a tone or chirp in class-owned bands.
        # Frequencies are in cycles/sample, kept well below Nyquist (0.5).
        f0 = 0.04 + 0.035 * cls
        pattern = [
            (f0, 0.0),
            (min(0.42, f0 * 1.6 + 0.02), 0.08 * (cls % 3)),
            (f0 * 0.6 + 0.015, -0.05 * (cls % 2)),
        ]
        seg = samples // 3
        nn_ = np.arange(seg)
        envelope = np.hanning(seg)
        for i in range(n_per_class):
            idx = cls * n_per_class + i
            y[idx] = cls
            sig = np.zeros(samples)
            jitter = int(rng.integers(-seg // 4, seg // 4))
            for k, (freq, sweep) in enumerate(pattern):
                start = max(0, min(samples - seg, k * seg + jitter))
                f = freq * rng.uniform(0.97, 1.03)
                phase = 2 * np.pi * (f * nn_ + 0.5 * (sweep / seg) * nn_ * nn_)
                sig[start : start + seg] += np.sin(phase + rng.uniform(0, 2 * np.pi)) * envelope
            x[idx] = sig + noise * rng.normal(size=samples)
    order = rng.permutation(n)
    return x[order], y[order]


def spectrogram_features(
    waveforms: np.ndarray,
    frame: int = 128,
    hop: int = 64,
    bins: int = 20,
    log_floor: float = 1e-3,
) -> np.ndarray:
    """Log-magnitude spectrogram features, (N, 1, frames, bins).

    A simplified KWS front-end: framed FFT magnitudes pooled into ``bins``
    triangular-ish bands, then log-compressed and normalized — the 2-D
    "image" the KWS CNNs consume.
    """
    n, samples = waveforms.shape
    frames = 1 + (samples - frame) // hop
    window = np.hanning(frame)
    out = np.zeros((n, 1, frames, bins), dtype=np.float64)
    fft_bins = frame // 2 + 1
    # Pool FFT bins into feature bands (roughly mel-like: denser at low end).
    edges = np.unique(
        np.clip((np.linspace(0, 1, bins + 1) ** 1.5 * (fft_bins - 1)).astype(int), 0, fft_bins - 1)
    )
    while len(edges) < bins + 1:
        edges = np.append(edges, edges[-1] + 1)
    for f in range(frames):
        seg = waveforms[:, f * hop : f * hop + frame] * window
        mag = np.abs(np.fft.rfft(seg, axis=1))
        for b in range(bins):
            lo, hi = edges[b], max(edges[b] + 1, edges[b + 1])
            out[:, 0, f, b] = mag[:, lo:hi].mean(axis=1)
    out = np.log(out + log_floor)
    out -= out.mean(axis=(2, 3), keepdims=True)
    out /= out.std(axis=(2, 3), keepdims=True) + 1e-9
    return out

"""Synthetic datasets standing in for CIFAR-10 and Speech Commands.

The paper evaluates on CIFAR (image classification) and the Speech
Commands dataset (keyword spotting).  Neither is redistributable nor
downloadable in this offline reproduction, so this package generates
*procedural* datasets that exercise the same code paths:

* :func:`synthetic_images` — class-conditional textures (oriented
  gratings, blobs, checkers) with per-sample jitter and noise, shaped like
  small CIFAR images (C, H, W).  Horizontal flipping is a label-preserving
  augmentation, as it is for CIFAR.
* :func:`synthetic_keywords` — per-class tone/chirp signatures embedded in
  noise, i.e. synthetic "spoken keywords"; :func:`spectrogram_features`
  turns waveforms into log-spectrogram images like a KWS front-end.
  Additive background noise is the natural augmentation, as in the paper.

Both are deterministic given a seed.
"""

from .synth_images import synthetic_images
from .synth_audio import synthetic_keywords, spectrogram_features

__all__ = ["synthetic_images", "synthetic_keywords", "spectrogram_features"]

"""Sequential network container."""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from .layers import Layer, Param

__all__ = ["Sequential"]


class Sequential:
    """A stack of layers with forward/backward and bookkeeping."""

    def __init__(self, layers: Sequence[Layer], input_shape: Tuple[int, ...], name: str = "net"):
        self.layers: List[Layer] = list(layers)
        self.input_shape = tuple(input_shape)
        self.name = name

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, training)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def params(self) -> List[Param]:
        out: List[Param] = []
        for layer in self.layers:
            out.extend(layer.params())
        return out

    def param_count(self) -> int:
        """Total trainable parameters (Table I's Params column)."""
        return sum(p.size for p in self.params())

    def output_shape(self) -> Tuple[int, ...]:
        """Per-sample output shape, folded through every layer statically.

        Lets consumers (e.g. the fused plan's shared-memory transport)
        size result buffers before running a single sample.
        """
        shape = self.input_shape
        for layer in self.layers:
            shape = layer.output_shape(shape)
        return tuple(shape)

    def macs(self) -> int:
        """Per-sample multiply-accumulates (Table I's MACs column)."""
        shape = self.input_shape
        total = 0
        for layer in self.layers:
            total += layer.macs(shape)
            shape = layer.output_shape(shape)
        return total

    def predict(self, x: np.ndarray, batch: int = 256) -> np.ndarray:
        outs = []
        for start in range(0, len(x), batch):
            outs.append(self.forward(x[start : start + batch], training=False))
        return np.concatenate(outs, axis=0)

    def __repr__(self):
        return (
            f"Sequential({self.name!r}, {len(self.layers)} layers, "
            f"{self.param_count():,} params, {self.macs():,} MACs)"
        )

"""Posit-quantized DNN inference, executed through :mod:`repro.engine`.

The edge-ML pitch of Section V, exercised end to end: weights and
activations are rounded onto a posit grid (no per-tensor scale calibration
— the tapered dynamic range absorbs it), products are exact for <=16-bit
formats (float64 holds any product of two such posits exactly; the wide
posit<32,2> path's 28-bit significands can round a product by one float64
ulp, ~2**-53 relative, far below the final posit rounding), and
accumulations model the quire (exact until the final rounding per
output).

All bulk arithmetic goes through a shared
:class:`repro.engine.posit_backend.PositBackend`: codecs and behaviour
tables are built once per format (process-wide registry) instead of per
network, and every op is recorded in the backend's counters so a
:class:`repro.engine.runner.BatchedRunner` can report per-op statistics.

Contrast with :class:`repro.nn.quantize.QuantizedNetwork`: int8 linear
quantization needs a calibration pass and per-layer scales; the posit
pipeline is calibration-free.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..engine.backend import OpCounters
from ..engine.kernels import nonfinite_count
from ..engine.observe import METRICS, TRACER
from ..engine.posit_backend import PositBackend
from ..posit import PositFormat
from .layers import Conv2D, Dense, ResidualBlock, im2col
from .network import Sequential

__all__ = ["PositQuantizedNetwork"]


class _PConv:
    def __init__(self, conv: Conv2D, engine: PositBackend):
        self.conv = conv
        self.engine = engine
        self.qw = engine.quantize(conv.w.data)

    def forward(self, x: np.ndarray) -> np.ndarray:
        qx = self.engine.quantize(x)
        f, c, kh, kw = self.qw.shape
        cols, oh, ow = im2col(qx, kh, kw, self.conv.stride, self.conv.pad)
        out = self.engine.matmul_values(cols, self.qw.reshape(f, -1).T) + self.conv.b.data
        return out.reshape(x.shape[0], oh, ow, f).transpose(0, 3, 1, 2)


class _PDense:
    def __init__(self, dense: Dense, engine: PositBackend):
        self.dense = dense
        self.engine = engine
        self.qw = engine.quantize(dense.w.data)

    def forward(self, x: np.ndarray) -> np.ndarray:
        qx = self.engine.quantize(x)
        return self.engine.matmul_values(qx, self.qw) + self.dense.b.data


class _PResidual:
    def __init__(self, block: ResidualBlock, engine: PositBackend):
        self.block = block
        self.exec1 = _PConv(block.conv1, engine)
        self.exec2 = _PConv(block.conv2, engine)

    def forward(self, x: np.ndarray) -> np.ndarray:
        y = self.exec1.forward(x)
        y = self.block.relu1.forward(y)
        y = self.exec2.forward(y)
        return self.block.relu2.forward(y + x)


class PositQuantizedNetwork:
    """Posit-grid inference over a trained float :class:`Sequential`.

    ``engine`` may be a preconstructed :class:`PositBackend` (e.g. sharing
    counters across several networks); by default one is built over the
    process-wide kernel registry, so constructing many networks for the
    same format reuses one codec instead of rebuilding its tables.

    Robustness hooks:

    * ``fault_plan`` — a :class:`repro.engine.faults.FaultPlan` whose
      ``activation_rate`` flips bits in each layer's *posit-encoded*
      activations (the soft-error model for activation SRAM); fully
      deterministic under the plan's seed.
    * ``poison_audit`` — count non-finite (NaR-decoded NaN / inf)
      elements after every layer into the ``poison.nonfinite`` metric and
      per-layer trace records; read back with :meth:`poison_report`.
    """

    def __init__(
        self,
        net: Sequential,
        fmt: PositFormat,
        engine: Optional[PositBackend] = None,
        counters: Optional[OpCounters] = None,
        fault_plan=None,
        poison_audit: bool = False,
        stable_contractions: bool = False,
    ):
        self.net = net
        self.fmt = fmt
        self.engine = (
            engine
            if engine is not None
            else PositBackend(
                fmt, counters=counters, stable_contractions=stable_contractions
            )
        )
        #: Whether contractions use the batch-composition-independent
        #: kernel (the serving layer's coalescing guarantee).  Mirrors the
        #: engine's flag so :class:`repro.engine.parallel.PositNetworkSpec`
        #: can rebuild an identical network worker-side.
        self.stable_contractions = bool(
            getattr(self.engine, "stable_contractions", stable_contractions)
        )
        self.fault_plan = fault_plan
        self.poison_audit = bool(poison_audit)
        self._poison: dict = {}
        self.codec = self.engine.codec  # back-compat alias
        self.executors: List[Optional[object]] = []
        for layer in net.layers:
            if isinstance(layer, Conv2D):
                self.executors.append(_PConv(layer, self.engine))
            elif isinstance(layer, Dense):
                self.executors.append(_PDense(layer, self.engine))
            elif isinstance(layer, ResidualBlock):
                self.executors.append(_PResidual(layer, self.engine))
            else:
                self.executors.append(None)
        # Precomputed span names: the tracer's disabled path costs one
        # attribute read, so keep the enabled path's per-layer cost tiny too.
        self._span_names = [
            f"layer.{type(layer).__name__}" for layer in net.layers
        ]
        self._fused_plan = None  # compiled lazily by fused_plan()

    def forward(self, x: np.ndarray) -> np.ndarray:
        plan = self.fault_plan
        inject = plan is not None and plan.activation_rate > 0.0
        for i, (name, layer, executor) in enumerate(
            zip(self._span_names, self.net.layers, self.executors)
        ):
            with TRACER.span(name, fmt=self.engine.name, quantized=executor is not None):
                x = executor.forward(x) if executor is not None else layer.forward(x)
            if inject:
                x = plan.corrupt_activations(x, self.engine, f"activation.{i}.{name}")
            if self.poison_audit:
                self._audit_layer(i, name, x)
        return x

    # ------------------------------------------------------------------
    # NaR/NaN poison audit
    # ------------------------------------------------------------------
    def _audit_layer(self, i: int, name: str, x: np.ndarray) -> None:
        bad = nonfinite_count(x)
        entry = self._poison.setdefault(
            (i, name), {"layer": i, "name": name, "nonfinite": 0, "elements": 0}
        )
        entry["nonfinite"] += bad
        entry["elements"] += int(np.asarray(x).size)
        if bad:
            METRICS.inc("poison.nonfinite", bad)
            if TRACER.enabled:
                TRACER.record(
                    "poison.layer",
                    ts=0.0,
                    dur=0.0,
                    attrs={"layer": i, "name": name, "nonfinite": bad},
                )

    def poison_report(self) -> List[dict]:
        """Per-layer non-finite propagation counts (poison audit results).

        Each entry: ``{"layer", "name", "nonfinite", "elements"}`` in layer
        order, accumulated over every :meth:`forward` since the last
        :meth:`reset_poison`.  Empty unless ``poison_audit=True``.
        """
        return [self._poison[k] for k in sorted(self._poison)]

    def reset_poison(self) -> None:
        self._poison.clear()

    def fused_plan(self):
        """The compiled :class:`repro.engine.fused.FusedPlan` for this
        network (compiled once against this network's own backend, then
        cached).  Raises :class:`ValueError` when fault injection or the
        poison audit is active — those hooks instrument the unfused
        datapath and have no fused equivalent.
        """
        if self.fault_plan is not None or self.poison_audit:
            raise ValueError(
                "fused execution is a pure execution strategy; fault "
                "injection and poison audits need the unfused path"
            )
        if self._fused_plan is None:
            from ..engine.fused import FusedPlan

            self._fused_plan = FusedPlan.compile(
                self.net, self.fmt, backend=self.engine
            )
        return self._fused_plan

    def predict(
        self,
        x: np.ndarray,
        batch: int = 256,
        workers: Optional[int] = None,
        fused: bool = False,
    ) -> np.ndarray:
        """Batched inference; ``workers`` > 1 shards batches across processes.

        The parallel path (:class:`repro.engine.parallel.ParallelRunner`)
        ships the float weights + format to each worker, which rebuilds the
        quantized network against the shared kernel-table disk cache; chunk
        boundaries stay batch-aligned so the output is bit-identical to the
        single-process path.  One process pool is created per call — for
        repeated serving, keep a ``BatchedRunner(..., workers=N)`` alive
        instead.

        ``fused=True`` runs the compiled code-space plan
        (:meth:`fused_plan`) instead of the per-layer executors —
        bit-identical output, substantially lower wall clock (the
        boundary searchsorted encodes dominate this path's profile), and,
        with ``workers`` > 1, shared-memory sharding instead of pickled
        float chunks.
        """
        model = self.fused_plan() if fused else self
        if workers is not None and workers > 1:
            from ..engine.parallel import ParallelRunner

            with ParallelRunner(model, workers=workers, batch_size=batch) as runner:
                return runner.run(x)
        outs = []
        for start in range(0, len(x), batch):
            outs.append(model.forward(x[start : start + batch]))
        return np.concatenate(outs, axis=0)

    def weight_quantization_error(self) -> float:
        """Worst relative weight-rounding error across quantized layers."""
        worst = 0.0
        for layer in self.net.layers:
            for param_owner in (
                [layer] if isinstance(layer, (Conv2D, Dense)) else
                [layer.conv1, layer.conv2] if isinstance(layer, ResidualBlock) else []
            ):
                worst = max(worst, self.codec.quantization_error(param_owner.w.data))
        return worst

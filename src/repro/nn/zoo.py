"""The three DNNs of Table I, scaled to this reproduction's substrate.

The paper evaluates ResNet20 (CIFAR) and two keyword-spotting CNNs
(Speech Commands).  Training full-size nets in pure numpy is infeasible,
so these are architecture-faithful miniatures: a residual image classifier
and two convolutional KWS models of clearly different capacities — enough
to reproduce Table I's *structure* (params, MACs, float vs 8-bit accuracy)
and Fig. 5's accuracy-vs-approximation behaviour.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .layers import Conv2D, Dense, Flatten, GlobalAvgPool, MaxPool2D, ReLU, ResidualBlock
from .network import Sequential

__all__ = ["resnet_mini", "kws_cnn1", "kws_cnn2"]


def resnet_mini(
    input_shape: Tuple[int, int, int] = (3, 16, 16),
    classes: int = 10,
    width: int = 12,
    blocks: int = 2,
    seed: int = 0,
) -> Sequential:
    """A miniature ResNet20-style residual classifier (the Table I ResNet20)."""
    rng = np.random.default_rng(seed)
    c, h, w = input_shape
    layers = [Conv2D(c, width, 3, 1, 1, rng, "stem"), ReLU()]
    for i in range(blocks):
        layers.append(ResidualBlock(width, rng, f"block{i}"))
    layers += [GlobalAvgPool(), Dense(width, classes, rng, "head")]
    return Sequential(layers, input_shape, name="resnet-mini")


def kws_cnn1(
    input_shape: Tuple[int, int, int] = (1, 31, 20),
    classes: int = 8,
    seed: int = 0,
) -> Sequential:
    """The smaller keyword-spotting CNN (Table I's KWS-CNN1)."""
    rng = np.random.default_rng(seed)
    c, h, w = input_shape
    flat = 12 * (h // 4) * (w // 4)
    layers = [
        Conv2D(c, 8, 3, 1, 1, rng, "c1"),
        ReLU(),
        MaxPool2D(2),
        Conv2D(8, 12, 3, 1, 1, rng, "c2"),
        ReLU(),
        MaxPool2D(2),
        Flatten(),
        Dense(flat, classes, rng, "head"),
    ]
    return Sequential(layers, input_shape, name="kws-cnn1")


def kws_cnn2(
    input_shape: Tuple[int, int, int] = (1, 31, 20),
    classes: int = 8,
    seed: int = 0,
) -> Sequential:
    """The larger keyword-spotting CNN (Table I's KWS-CNN2)."""
    rng = np.random.default_rng(seed)
    c, h, w = input_shape
    flat = 32 * (h // 4) * (w // 4)
    layers = [
        Conv2D(c, 12, 3, 1, 1, rng, "c1"),
        ReLU(),
        MaxPool2D(2),
        Conv2D(12, 24, 3, 1, 1, rng, "c2"),
        ReLU(),
        MaxPool2D(2),
        Conv2D(24, 32, 3, 1, 1, rng, "c3"),
        ReLU(),
        Flatten(),
        Dense(flat, classes, rng, "head"),
    ]
    return Sequential(layers, input_shape, name="kws-cnn2")

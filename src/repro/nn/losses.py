"""Loss functions."""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["softmax", "softmax_cross_entropy"]


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax, numerically stable."""
    z = logits - logits.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


def softmax_cross_entropy(logits: np.ndarray, labels: np.ndarray) -> Tuple[float, np.ndarray]:
    """Cross-entropy loss of eq. (1) with integer class labels.

    Returns ``(mean_loss, dloss/dlogits)``.
    """
    n = logits.shape[0]
    probs = softmax(logits)
    eps = 1e-12
    loss = -np.log(probs[np.arange(n), labels] + eps).mean()
    grad = probs.copy()
    grad[np.arange(n), labels] -= 1.0
    return float(loss), grad / n

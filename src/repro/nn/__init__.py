"""A from-scratch numpy DNN framework (the substrate for Section IV).

The paper's approximate-computing study (Table I, Fig. 5) needs full
control of every multiplication inside convolutional and fully connected
layers — something off-the-shelf frameworks hide.  This package provides:

* float layers and training (:mod:`repro.nn.layers`, :mod:`repro.nn.network`,
  :mod:`repro.nn.optim`, :mod:`repro.nn.losses`);
* 8-bit linear quantization and behavioural approximate execution with
  straight-through-estimator retraining (:mod:`repro.nn.quantize`),
  reproducing the retraining scheme of Section IV-B: the forward pass runs
  the approximate multiplier, the backward pass differentiates the
  *accurate* network (eq. (2): "the gradient of the approximate function is
  undefined and thus we need to estimate it using the accurate
  counterpart");
* the data-augmentation transforms whose interaction with approximation
  Fig. 5 studies (:mod:`repro.nn.augment`).
"""

from .layers import (
    Layer,
    Param,
    Dense,
    Conv2D,
    ReLU,
    MaxPool2D,
    GlobalAvgPool,
    Flatten,
    BatchNorm2D,
    ResidualBlock,
)
from .network import Sequential
from .losses import softmax_cross_entropy, softmax
from .optim import SGD, Adam
from .quantize import QuantizedNetwork, quantize_tensor, dequantize
from .augment import random_flip, add_background_noise
from .train import train, evaluate_accuracy

__all__ = [
    "Layer",
    "Param",
    "Dense",
    "Conv2D",
    "ReLU",
    "MaxPool2D",
    "GlobalAvgPool",
    "Flatten",
    "BatchNorm2D",
    "ResidualBlock",
    "Sequential",
    "softmax_cross_entropy",
    "softmax",
    "SGD",
    "Adam",
    "QuantizedNetwork",
    "quantize_tensor",
    "dequantize",
    "random_flip",
    "add_background_noise",
    "train",
    "evaluate_accuracy",
]

"""Optimizers (eq. (2)'s weight update)."""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from .layers import Param

__all__ = ["SGD", "Adam"]


class SGD:
    """Stochastic gradient descent with classical momentum."""

    def __init__(self, params: Iterable[Param], lr: float = 0.01, momentum: float = 0.9):
        self.params: List[Param] = list(params)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def zero_grad(self):
        """Clear every parameter's accumulated gradient."""
        for p in self.params:
            p.grad[...] = 0.0

    def step(self):
        """Apply one update from the accumulated gradients."""
        for p, v in zip(self.params, self._velocity):
            v *= self.momentum
            v -= self.lr * p.grad
            p.data += v


class Adam:
    """Adam optimizer."""

    def __init__(
        self,
        params: Iterable[Param],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ):
        self.params: List[Param] = list(params)
        self.lr, self.beta1, self.beta2, self.eps = lr, beta1, beta2, eps
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def zero_grad(self):
        """Clear every parameter's accumulated gradient."""
        for p in self.params:
            p.grad[...] = 0.0

    def step(self):
        """Apply one update from the accumulated gradients."""
        self._t += 1
        b1t = 1 - self.beta1**self._t
        b2t = 1 - self.beta2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            m *= self.beta1
            m += (1 - self.beta1) * p.grad
            v *= self.beta2
            v += (1 - self.beta2) * p.grad**2
            p.data -= self.lr * (m / b1t) / (np.sqrt(v / b2t) + self.eps)

"""Training loops for float and quantized/approximate networks."""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from .losses import softmax_cross_entropy
from .network import Sequential
from .optim import Adam

__all__ = ["train", "evaluate_accuracy"]


def train(
    net: Sequential,
    x: np.ndarray,
    y: np.ndarray,
    epochs: int = 5,
    batch: int = 64,
    lr: float = 1e-3,
    augment: Optional[Callable[[np.ndarray, np.random.Generator], np.ndarray]] = None,
    seed: int = 0,
    verbose: bool = False,
) -> list:
    """Train a float network with Adam; returns the per-epoch mean losses."""
    rng = np.random.default_rng(seed)
    opt = Adam(net.params(), lr=lr)
    history = []
    for epoch in range(epochs):
        order = rng.permutation(len(x))
        losses = []
        for start in range(0, len(x), batch):
            idx = order[start : start + batch]
            xb = x[idx]
            if augment is not None:
                xb = augment(xb, rng)
            opt.zero_grad()
            logits = net.forward(xb, training=True)
            loss, grad = softmax_cross_entropy(logits, y[idx])
            net.backward(grad)
            opt.step()
            losses.append(loss)
        history.append(float(np.mean(losses)))
        if verbose:
            print(f"epoch {epoch}: loss {history[-1]:.4f}")
    return history


def evaluate_accuracy(predict_fn, x: np.ndarray, y: np.ndarray) -> float:
    """Top-1 accuracy of ``predict_fn(x) -> logits``."""
    logits = predict_fn(x)
    return float(np.mean(np.argmax(logits, axis=1) == y))

"""Neural-network layers with explicit forward/backward passes."""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

__all__ = [
    "Param",
    "Layer",
    "Dense",
    "Conv2D",
    "ReLU",
    "MaxPool2D",
    "GlobalAvgPool",
    "Flatten",
    "BatchNorm2D",
    "ResidualBlock",
    "im2col",
    "col2im",
]


class Param:
    """A trainable tensor with its gradient."""

    __slots__ = ("data", "grad", "name")

    def __init__(self, data: np.ndarray, name: str = ""):
        self.data = data
        self.grad = np.zeros_like(data)
        self.name = name

    @property
    def size(self) -> int:
        return self.data.size


class Layer:
    """Base layer: stateless unless it owns :class:`Param` objects."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def params(self) -> List[Param]:
        return []

    def macs(self, input_shape: Tuple[int, ...]) -> int:
        """Multiply-accumulate count for one sample (Table I's MACs column)."""
        return 0

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return input_shape


def im2col(x: np.ndarray, kh: int, kw: int, stride: int, pad: int):
    """(N, C, H, W) -> patch matrix (N*OH*OW, C*KH*KW) plus geometry."""
    n, c, h, w = x.shape
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    oh = (h + 2 * pad - kh) // stride + 1
    ow = (w + 2 * pad - kw) // stride + 1
    shape = (n, c, kh, kw, oh, ow)
    strides = (
        x.strides[0],
        x.strides[1],
        x.strides[2],
        x.strides[3],
        x.strides[2] * stride,
        x.strides[3] * stride,
    )
    patches = np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)
    cols = patches.transpose(0, 4, 5, 1, 2, 3).reshape(n * oh * ow, c * kh * kw)
    return np.ascontiguousarray(cols), oh, ow


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Adjoint of :func:`im2col` (scatter-add patches back)."""
    n, c, h, w = x_shape
    hp, wp = h + 2 * pad, w + 2 * pad
    oh = (hp - kh) // stride + 1
    ow = (wp - kw) // stride + 1
    x = np.zeros((n, c, hp, wp), dtype=cols.dtype)
    cols6 = cols.reshape(n, oh, ow, c, kh, kw).transpose(0, 3, 4, 5, 1, 2)
    for i in range(kh):
        for j in range(kw):
            x[:, :, i : i + stride * oh : stride, j : j + stride * ow : stride] += cols6[
                :, :, i, j
            ]
    if pad:
        return x[:, :, pad:-pad, pad:-pad]
    return x


class Dense(Layer):
    """Fully connected layer ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int, rng=None, name: str = "dense"):
        rng = rng or np.random.default_rng(0)
        scale = np.sqrt(2.0 / in_features)
        self.w = Param(rng.normal(0, scale, size=(in_features, out_features)), f"{name}.w")
        self.b = Param(np.zeros(out_features), f"{name}.b")
        self._x: Optional[np.ndarray] = None

    def forward(self, x, training=False):
        self._x = x
        return x @ self.w.data + self.b.data

    def backward(self, grad):
        self.w.grad += self._x.T @ grad
        self.b.grad += grad.sum(axis=0)
        return grad @ self.w.data.T

    def params(self):
        return [self.w, self.b]

    def macs(self, input_shape):
        return self.w.data.shape[0] * self.w.data.shape[1]

    def output_shape(self, input_shape):
        return (self.w.data.shape[1],)


class Conv2D(Layer):
    """2-D convolution (N, C, H, W) -> (N, F, OH, OW)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int = 3,
        stride: int = 1,
        pad: int = 1,
        rng=None,
        name: str = "conv",
    ):
        rng = rng or np.random.default_rng(0)
        fan_in = in_channels * kernel * kernel
        scale = np.sqrt(2.0 / fan_in)
        self.w = Param(
            rng.normal(0, scale, size=(out_channels, in_channels, kernel, kernel)),
            f"{name}.w",
        )
        self.b = Param(np.zeros(out_channels), f"{name}.b")
        self.stride, self.pad, self.kernel = stride, pad, kernel
        self._cols: Optional[np.ndarray] = None
        self._x_shape = None
        self._out_hw = None

    def forward(self, x, training=False):
        f, c, kh, kw = self.w.data.shape
        cols, oh, ow = im2col(x, kh, kw, self.stride, self.pad)
        self._cols, self._x_shape, self._out_hw = cols, x.shape, (oh, ow)
        out = cols @ self.w.data.reshape(f, -1).T + self.b.data
        return out.reshape(x.shape[0], oh, ow, f).transpose(0, 3, 1, 2)

    def backward(self, grad):
        f, c, kh, kw = self.w.data.shape
        n = self._x_shape[0]
        oh, ow = self._out_hw
        gmat = grad.transpose(0, 2, 3, 1).reshape(n * oh * ow, f)
        self.w.grad += (gmat.T @ self._cols).reshape(self.w.data.shape)
        self.b.grad += gmat.sum(axis=0)
        gcols = gmat @ self.w.data.reshape(f, -1)
        return col2im(gcols, self._x_shape, kh, kw, self.stride, self.pad)

    def params(self):
        return [self.w, self.b]

    def macs(self, input_shape):
        c, h, w = input_shape
        oh = (h + 2 * self.pad - self.kernel) // self.stride + 1
        ow = (w + 2 * self.pad - self.kernel) // self.stride + 1
        f = self.w.data.shape[0]
        return oh * ow * f * c * self.kernel * self.kernel

    def output_shape(self, input_shape):
        c, h, w = input_shape
        oh = (h + 2 * self.pad - self.kernel) // self.stride + 1
        ow = (w + 2 * self.pad - self.kernel) // self.stride + 1
        return (self.w.data.shape[0], oh, ow)


class ReLU(Layer):
    """Rectified linear unit."""
    def __init__(self):
        self._mask = None

    def forward(self, x, training=False):
        self._mask = x > 0
        return x * self._mask

    def backward(self, grad):
        return grad * self._mask


class MaxPool2D(Layer):
    """Non-overlapping 2-D max pooling."""
    def __init__(self, size: int = 2):
        self.size = size
        self._x = None
        self._max = None

    def forward(self, x, training=False):
        n, c, h, w = x.shape
        s = self.size
        hh, ww = h // s, w // s
        view = x[:, :, : hh * s, : ww * s].reshape(n, c, hh, s, ww, s)
        out = view.max(axis=(3, 5))
        self._x, self._out = x, out
        return out

    def backward(self, grad):
        n, c, h, w = self._x.shape
        s = self.size
        hh, ww = h // s, w // s
        view = self._x[:, :, : hh * s, : ww * s].reshape(n, c, hh, s, ww, s)
        mask = view == self._out[:, :, :, None, :, None]
        # Distribute (ties share the gradient like in most frameworks' eps-free impls).
        counts = mask.sum(axis=(3, 5), keepdims=True)
        g = mask * (grad[:, :, :, None, :, None] / np.maximum(counts, 1))
        out = np.zeros_like(self._x)
        out[:, :, : hh * s, : ww * s] = g.reshape(n, c, hh * s, ww * s)
        return out

    def output_shape(self, input_shape):
        c, h, w = input_shape
        return (c, h // self.size, w // self.size)


class GlobalAvgPool(Layer):
    """Global average pooling over the spatial dimensions."""
    def __init__(self):
        self._shape = None

    def forward(self, x, training=False):
        self._shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad):
        n, c, h, w = self._shape
        return np.broadcast_to(grad[:, :, None, None], self._shape) / (h * w)

    def output_shape(self, input_shape):
        return (input_shape[0],)


class Flatten(Layer):
    """Flatten (N, ...) to (N, features)."""
    def __init__(self):
        self._shape = None

    def forward(self, x, training=False):
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad):
        return grad.reshape(self._shape)

    def output_shape(self, input_shape):
        out = 1
        for d in input_shape:
            out *= d
        return (out,)


class BatchNorm2D(Layer):
    """Per-channel batch normalization with running statistics."""

    def __init__(self, channels: int, momentum: float = 0.9, eps: float = 1e-5, name: str = "bn"):
        self.gamma = Param(np.ones(channels), f"{name}.gamma")
        self.beta = Param(np.zeros(channels), f"{name}.beta")
        self.running_mean = np.zeros(channels)
        self.running_var = np.ones(channels)
        self.momentum, self.eps = momentum, eps
        self._cache = None

    def forward(self, x, training=False):
        if training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            self.running_mean = self.momentum * self.running_mean + (1 - self.momentum) * mean
            self.running_var = self.momentum * self.running_var + (1 - self.momentum) * var
        else:
            mean, var = self.running_mean, self.running_var
        std = np.sqrt(var + self.eps)
        xhat = (x - mean[None, :, None, None]) / std[None, :, None, None]
        self._cache = (xhat, std, x.shape)
        return self.gamma.data[None, :, None, None] * xhat + self.beta.data[None, :, None, None]

    def backward(self, grad):
        xhat, std, shape = self._cache
        n_elem = shape[0] * shape[2] * shape[3]
        self.gamma.grad += (grad * xhat).sum(axis=(0, 2, 3))
        self.beta.grad += grad.sum(axis=(0, 2, 3))
        g = grad * self.gamma.data[None, :, None, None]
        # Standard batchnorm backward (training-mode statistics).
        dxhat = g
        dvar_term = (dxhat * xhat).sum(axis=(0, 2, 3), keepdims=False)
        dmean_term = dxhat.sum(axis=(0, 2, 3))
        dx = (
            dxhat
            - (dmean_term / n_elem)[None, :, None, None]
            - xhat * (dvar_term / n_elem)[None, :, None, None]
        ) / std[None, :, None, None]
        return dx

    def params(self):
        return [self.gamma, self.beta]

    def fold_into(self, conv: Conv2D) -> None:
        """Fold this BN into the preceding convolution (inference form)."""
        std = np.sqrt(self.running_var + self.eps)
        scale = self.gamma.data / std
        conv.w.data = conv.w.data * scale[:, None, None, None]
        conv.b.data = (conv.b.data - self.running_mean) * scale + self.beta.data
        # Neutralize self.
        self.gamma.data = np.ones_like(self.gamma.data)
        self.beta.data = np.zeros_like(self.beta.data)
        self.running_mean = np.zeros_like(self.running_mean)
        self.running_var = np.ones_like(self.running_var) - self.eps


class ResidualBlock(Layer):
    """conv-relu-conv + identity shortcut, then relu (ResNet basic block)."""

    def __init__(self, channels: int, rng=None, name: str = "res"):
        self.conv1 = Conv2D(channels, channels, 3, 1, 1, rng, f"{name}.conv1")
        self.relu1 = ReLU()
        self.conv2 = Conv2D(channels, channels, 3, 1, 1, rng, f"{name}.conv2")
        self.relu2 = ReLU()

    def forward(self, x, training=False):
        y = self.conv1.forward(x, training)
        y = self.relu1.forward(y, training)
        y = self.conv2.forward(y, training)
        return self.relu2.forward(y + x, training)

    def backward(self, grad):
        g = self.relu2.backward(grad)
        gy = self.conv2.backward(g)
        gy = self.relu1.backward(gy)
        gx = self.conv1.backward(gy)
        return gx + g  # shortcut path

    def params(self):
        return self.conv1.params() + self.conv2.params()

    def macs(self, input_shape):
        return self.conv1.macs(input_shape) + self.conv2.macs(input_shape)

    def output_shape(self, input_shape):
        return input_shape

"""Data augmentation (Section IV-C.2).

"For image classification, we randomly flip the training samples, and for
keyword spotting, we add background noise with a volume of 10% to the
initial time series."  Fig. 5 studies how these interact with approximate
retraining: augmentation is itself a regularizer, and stacking it on top of
the approximation noise makes the approximation error harder to compensate.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["random_flip", "add_background_noise"]


def random_flip(images: np.ndarray, rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Randomly mirror each (N, C, H, W) image horizontally with p = 0.5."""
    rng = rng or np.random.default_rng()
    flip = rng.random(len(images)) < 0.5
    out = images.copy()
    out[flip] = out[flip, :, :, ::-1]
    return out


def add_background_noise(
    waveforms: np.ndarray,
    volume: float = 0.10,
    rng: Optional[np.random.Generator] = None,
    noise_bank: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Add background noise at ``volume`` (fraction of the signal RMS).

    ``waveforms`` is (N, T); ``noise_bank`` optionally supplies realistic
    noise clips to draw from (white noise otherwise).
    """
    rng = rng or np.random.default_rng()
    n, t = waveforms.shape
    rms = np.sqrt(np.mean(waveforms**2, axis=1, keepdims=True)) + 1e-9
    if noise_bank is not None:
        idx = rng.integers(0, len(noise_bank), size=n)
        start = rng.integers(0, max(1, noise_bank.shape[1] - t + 1), size=n)
        noise = np.stack([noise_bank[i, s : s + t] for i, s in zip(idx, start)])
        noise_rms = np.sqrt(np.mean(noise**2, axis=1, keepdims=True)) + 1e-9
        noise = noise / noise_rms
    else:
        noise = rng.normal(size=(n, t))
    return waveforms + volume * rms * noise

"""8-bit linear quantization and approximate execution with STE retraining.

Section IV: "We quantize weights, bias, and activations to 8 bits using
linear quantization" and introduce the behavioural simulation of a given
approximate multiplier into the layer computation.  Retraining follows
eq. (2): the forward pass is approximate, the gradient is taken from the
accurate (linear) computation — the straight-through estimator.

Symmetric per-tensor quantization: ``q = clip(round(x / scale), -127, 127)``
with ``scale = max|x| / 127``.  Integer accumulation is exact (int64); the
approximate multiplier replaces the elementwise int8 x int8 products via
its exhaustive behaviour table (:func:`repro.approx.simulate.signed_lut`).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..approx.simulate import approx_conv2d, approx_matmul
from .layers import BatchNorm2D, Conv2D, Dense, ResidualBlock, col2im, im2col
from .network import Sequential

__all__ = ["quantize_tensor", "dequantize", "QuantizedNetwork"]


def quantize_tensor(x: np.ndarray, scale: Optional[float] = None) -> Tuple[np.ndarray, float]:
    """Symmetric int8 quantization; returns ``(q, scale)``."""
    if scale is None:
        scale = float(np.max(np.abs(x))) / 127.0
        if scale == 0.0:
            scale = 1.0
    q = np.clip(np.round(x / scale), -127, 127).astype(np.int64)
    return q, scale


def dequantize(q: np.ndarray, scale: float) -> np.ndarray:
    return q.astype(np.float64) * scale


class _QConvExecutor:
    """Quantized + approximate execution of one convolution."""

    def __init__(self, conv: Conv2D, act_scale: float):
        self.conv = conv
        self.act_scale = act_scale

    def forward(self, x: np.ndarray, lut: Optional[np.ndarray]) -> np.ndarray:
        qx, sx = quantize_tensor(x, self.act_scale)
        qw, sw = quantize_tensor(self.conv.w.data)
        acc = approx_conv2d(qx, qw, lut, self.conv.stride, self.conv.pad)
        out = acc.astype(np.float64) * (sx * sw)
        out += self.conv.b.data[None, :, None, None]
        # Cache the dequantized input for the accurate backward pass.
        self._x_deq = dequantize(qx, sx)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Accurate-path gradient (STE) through the float conv."""
        conv = self.conv
        f, c, kh, kw = conv.w.data.shape
        cols, oh, ow = im2col(self._x_deq, kh, kw, conv.stride, conv.pad)
        n = self._x_deq.shape[0]
        gmat = grad.transpose(0, 2, 3, 1).reshape(n * oh * ow, f)
        conv.w.grad += (gmat.T @ cols).reshape(conv.w.data.shape)
        conv.b.grad += gmat.sum(axis=0)
        gcols = gmat @ conv.w.data.reshape(f, -1)
        return col2im(gcols, self._x_deq.shape, kh, kw, conv.stride, conv.pad)


class _QDenseExecutor:
    def __init__(self, dense: Dense, act_scale: float):
        self.dense = dense
        self.act_scale = act_scale

    def forward(self, x: np.ndarray, lut: Optional[np.ndarray]) -> np.ndarray:
        qx, sx = quantize_tensor(x, self.act_scale)
        qw, sw = quantize_tensor(self.dense.w.data)
        acc = approx_matmul(qx, qw, lut)
        out = acc.astype(np.float64) * (sx * sw) + self.dense.b.data
        self._x_deq = dequantize(qx, sx)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        dense = self.dense
        dense.w.grad += self._x_deq.T @ grad
        dense.b.grad += grad.sum(axis=0)
        return grad @ dense.w.data.T


class _QResidualExecutor:
    """Residual block with both convolutions quantized."""

    def __init__(self, block: ResidualBlock, scale1: float, scale2: float):
        self.block = block
        self.exec1 = _QConvExecutor(block.conv1, scale1)
        self.exec2 = _QConvExecutor(block.conv2, scale2)

    def forward(self, x: np.ndarray, lut) -> np.ndarray:
        y = self.exec1.forward(x, lut)
        y = self.block.relu1.forward(y)
        y = self.exec2.forward(y, lut)
        return self.block.relu2.forward(y + x)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        g = self.block.relu2.backward(grad)
        gy = self.exec2.backward(g)
        gy = self.block.relu1.backward(gy)
        gx = self.exec1.backward(gy)
        return gx + g


class QuantizedNetwork:
    """An 8-bit quantized view of a float :class:`Sequential` network.

    Construction calibrates one activation scale per quantized layer from
    a calibration batch (max-abs, as in the simplest linear post-training
    quantization).  ``lut=None`` runs exact int8 arithmetic (the paper's
    "8-bit" baseline column of Table I); passing an approximate
    multiplier's signed behaviour table runs the ProxSim-style approximate
    forward.  :meth:`train_step` implements the STE retraining of eq. (2),
    updating the underlying float network's master weights.
    """

    QUANTIZABLE = (Conv2D, Dense, ResidualBlock)

    def __init__(self, net: Sequential, calibration: np.ndarray):
        if any(isinstance(l, BatchNorm2D) for l in net.layers):
            raise ValueError("fold BatchNorm before quantization (fold_batchnorm)")
        self.net = net
        self.executors: List[object] = []
        self._calibrate(calibration)

    # ------------------------------------------------------------------
    def _calibrate(self, calibration: np.ndarray) -> None:
        x = calibration
        self.executors = []
        for layer in self.net.layers:
            if isinstance(layer, Conv2D):
                scale = float(np.max(np.abs(x))) / 127.0 or 1.0
                self.executors.append(_QConvExecutor(layer, scale))
            elif isinstance(layer, Dense):
                scale = float(np.max(np.abs(x))) / 127.0 or 1.0
                self.executors.append(_QDenseExecutor(layer, scale))
            elif isinstance(layer, ResidualBlock):
                s1 = float(np.max(np.abs(x))) / 127.0 or 1.0
                mid = layer.relu1.forward(layer.conv1.forward(x))
                s2 = float(np.max(np.abs(mid))) / 127.0 or 1.0
                self.executors.append(_QResidualExecutor(layer, s1, s2))
            else:
                self.executors.append(None)
            x = layer.forward(x, training=False)

    def recalibrate(self, calibration: np.ndarray) -> None:
        """Refresh activation scales (e.g. after several retraining steps)."""
        self._calibrate(calibration)

    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray, lut: Optional[np.ndarray] = None) -> np.ndarray:
        for layer, executor in zip(self.net.layers, self.executors):
            if executor is None:
                x = layer.forward(x, training=False)
            else:
                x = executor.forward(x, lut)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer, executor in zip(reversed(self.net.layers), reversed(self.executors)):
            if executor is None:
                grad = layer.backward(grad)
            else:
                grad = executor.backward(grad)
        return grad

    def predict(self, x: np.ndarray, lut: Optional[np.ndarray] = None, batch: int = 256) -> np.ndarray:
        outs = []
        for start in range(0, len(x), batch):
            outs.append(self.forward(x[start : start + batch], lut))
        return np.concatenate(outs, axis=0)

    def train_step(self, x, labels, optimizer, lut: Optional[np.ndarray] = None) -> float:
        """One STE retraining step: approximate forward, accurate backward."""
        from .losses import softmax_cross_entropy

        optimizer.zero_grad()
        logits = self.forward(x, lut)
        loss, grad = softmax_cross_entropy(logits, labels)
        self.backward(grad)
        optimizer.step()
        return loss

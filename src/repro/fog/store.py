"""repro.fog.store — per-node content store for computation results.

A bounded LRU cache keyed by computation name (see :mod:`repro.fog.names`).
Entries are immutable by construction — results are copied in, marked
read-only, and their :func:`~repro.engine.registry.array_digest` is pinned
at insertion — so a hit replays exactly the bytes the original execution
produced.  Every :meth:`get` re-verifies the pinned digest before serving;
an entry whose bytes no longer match its name is dropped and counted
(``integrity_failures``) rather than served, mirroring the kernel disk
cache's quarantine-and-rebuild posture.

Entries also record the content digest of the kernel tables the producing
node executed over (when the registry had them resident), so a cached
result carries provenance: *which function, which inputs, which kernel
bytes*.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional

import numpy as np

from ..engine.registry import array_digest

__all__ = ["ContentStore"]


class _Entry:
    __slots__ = ("result", "digest", "kernel_digest", "nbytes")

    def __init__(self, result: np.ndarray, kernel_digest: Optional[str]):
        frozen = np.array(result, copy=True)
        frozen.setflags(write=False)
        self.result = frozen
        self.digest = array_digest(frozen)
        self.kernel_digest = kernel_digest
        self.nbytes = int(frozen.nbytes)


class ContentStore:
    """LRU content-addressed result cache with verified replay.

    Parameters:
        capacity_bytes: Result-byte budget; least-recently-used entries are
            evicted past it.  A single result larger than the budget is
            simply not cached.
    """

    def __init__(self, capacity_bytes: int = 16 << 20):
        if capacity_bytes < 1:
            raise ValueError("capacity_bytes must be positive")
        self.capacity_bytes = int(capacity_bytes)
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self.resident_bytes = 0
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0
        self.integrity_failures = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    # ------------------------------------------------------------------
    def put(self, name: str, result: np.ndarray, kernel_digest: Optional[str] = None) -> bool:
        """Cache ``result`` under ``name``; False if it exceeds the budget.

        Re-inserting an existing name refreshes its recency (the bytes are
        content-addressed, so any two correct producers wrote the same
        ones).
        """
        entry = _Entry(result, kernel_digest)
        if entry.nbytes > self.capacity_bytes:
            return False
        old = self._entries.pop(name, None)
        if old is not None:
            self.resident_bytes -= old.nbytes
        self._entries[name] = entry
        self.resident_bytes += entry.nbytes
        self.insertions += 1
        while self.resident_bytes > self.capacity_bytes:
            _, evicted = self._entries.popitem(last=False)
            self.resident_bytes -= evicted.nbytes
            self.evictions += 1
        return True

    def get(self, name: str) -> Optional[np.ndarray]:
        """The verified read-only result for ``name``, or ``None``.

        A hit refreshes recency; a digest mismatch (bit rot, a buggy
        producer mutating shared memory) drops the entry and reports a
        miss — the fog must re-execute rather than serve corrupt bytes.
        """
        entry = self._entries.get(name)
        if entry is None:
            self.misses += 1
            return None
        if array_digest(entry.result) != entry.digest:
            del self._entries[name]
            self.resident_bytes -= entry.nbytes
            self.integrity_failures += 1
            self.misses += 1
            return None
        self._entries.move_to_end(name)
        self.hits += 1
        return entry.result

    def kernel_digest(self, name: str) -> Optional[str]:
        """The kernel provenance recorded for ``name`` (no recency effect)."""
        entry = self._entries.get(name)
        return entry.kernel_digest if entry is not None else None

    def clear(self) -> None:
        """Drop every entry (node crash / memory loss); stats survive."""
        self._entries.clear()
        self.resident_bytes = 0

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self._entries),
            "resident_bytes": self.resident_bytes,
            "capacity_bytes": self.capacity_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "integrity_failures": self.integrity_failures,
        }

"""repro.fog.store — per-node content store for computation results.

A bounded LRU cache keyed by computation name (see :mod:`repro.fog.names`).
Entries are immutable by construction — results are copied in, marked
read-only, and their :func:`~repro.engine.registry.array_digest` is pinned
at insertion — so a hit replays exactly the bytes the original execution
produced.  :meth:`get` re-verifies the pinned digest before serving (every
hit by default; every Nth hit with ``reverify_every=N``); an entry whose
bytes no longer match its name is dropped and counted
(``integrity_failures``) rather than served, mirroring the kernel disk
cache's quarantine-and-rebuild posture.

Eviction is LRU, but **admission** is pluggable: the store asks its
:class:`AdmissionPolicy` whether a candidate is worth the victims it would
evict.  :class:`AdmitAll` (policy ``"lru"``, the default) always says yes
— plain LRU, bit-for-bit the historical behavior.
:class:`CostAwareAdmission` (policy ``"costaware"``) keeps a TinyLFU-style
frequency sketch over interest names and admits only when the candidate's
``frequency x recompute-cost`` value beats each victim's, so a one-hit
wonder cannot evict an expensive, frequently re-requested result.  The
sketch ages by halving every ``sample_size`` touches, so admission
depends only on the access sequence — deterministic, replayable.

Entries also record the content digest of the kernel tables the producing
node executed over (when the registry had them resident), so a cached
result carries provenance: *which function, which inputs, which kernel
bytes* — plus the measured recompute cost the admission policy weighs.

All public methods are thread-safe: node processes serve concurrent
frames from a worker pool, and every one of them goes through the store.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional, Union

import numpy as np

from ..engine.registry import array_digest

__all__ = [
    "AdmissionPolicy",
    "AdmitAll",
    "ContentStore",
    "CostAwareAdmission",
    "make_admission",
]


class _Entry:
    __slots__ = (
        "result",
        "digest",
        "kernel_digest",
        "nbytes",
        "cost",
        "hits_since_verify",
    )

    def __init__(
        self,
        result: np.ndarray,
        kernel_digest: Optional[str],
        cost: float = 1.0,
    ):
        frozen = np.array(result, copy=True)
        frozen.setflags(write=False)
        self.result = frozen
        self.digest = array_digest(frozen)
        self.kernel_digest = kernel_digest
        self.nbytes = int(frozen.nbytes)
        self.cost = float(cost)
        self.hits_since_verify = 0


# ----------------------------------------------------------------------
# Admission policies
# ----------------------------------------------------------------------
class AdmissionPolicy:
    """Decides whether a candidate entry may evict a victim.

    The store calls :meth:`record_get` on every lookup (hit or miss) so a
    policy can learn access frequencies, and :meth:`admit` once per victim
    an insertion would need to evict.  Policies see only names and costs —
    never bytes — so they cannot affect *what* is served, only *whether*
    it is cached: the reject-or-exact contract is out of their reach.
    """

    name = "base"

    def record_get(self, key: str) -> None:  # noqa: B027 — optional hook
        pass

    def admit(
        self,
        candidate: str,
        nbytes: int,
        cost: float,
        victim: str,
        victim_cost: float,
    ) -> bool:
        return True


class AdmitAll(AdmissionPolicy):
    """Classic LRU: every insertion is admitted, LRU victims always evicted."""

    name = "lru"


class CostAwareAdmission(AdmissionPolicy):
    """TinyLFU-style frequency-sketch admission weighted by recompute cost.

    Keeps a counting sketch of interest names (a plain dict here — node
    working sets are small enough that probabilistic compression would buy
    nothing).  Every ``sample_size`` touches, all counts halve (integer
    shift) and zeroes are dropped: recent popularity outweighs ancient
    history, and the sketch stays bounded.  A candidate is admitted over a
    victim iff ``freq(candidate) * cost(candidate)`` strictly exceeds
    ``freq(victim) * cost(victim)`` — a newcomer must prove it is worth
    more re-execution milliseconds saved than what it displaces.

    Parameters:
        sample_size: Touches between aging halvings (the sketch's window).
    """

    name = "costaware"

    def __init__(self, sample_size: int = 1024):
        if sample_size < 1:
            raise ValueError("sample_size must be positive")
        self.sample_size = int(sample_size)
        self._counts: Dict[str, int] = {}
        self._ops = 0
        self.ages = 0

    def _touch(self, key: str) -> None:
        self._counts[key] = self._counts.get(key, 0) + 1
        self._ops += 1
        if self._ops >= self.sample_size:
            self._counts = {k: v >> 1 for k, v in self._counts.items() if v >> 1}
            self._ops = 0
            self.ages += 1

    def record_get(self, key: str) -> None:
        self._touch(key)

    def frequency(self, key: str) -> int:
        return self._counts.get(key, 0)

    def admit(
        self,
        candidate: str,
        nbytes: int,
        cost: float,
        victim: str,
        victim_cost: float,
    ) -> bool:
        self._touch(candidate)
        candidate_value = self.frequency(candidate) * max(float(cost), 1e-9)
        victim_value = self.frequency(victim) * max(float(victim_cost), 1e-9)
        return candidate_value > victim_value


def make_admission(
    policy: Union[None, str, AdmissionPolicy],
) -> AdmissionPolicy:
    """Resolve a policy name (``"lru"``/``"costaware"``) or instance.

    Strings construct a **fresh** instance so every store (one per fog
    node) gets its own sketch.
    """
    if policy is None:
        return AdmitAll()
    if isinstance(policy, AdmissionPolicy):
        return policy
    if policy == "lru":
        return AdmitAll()
    if policy == "costaware":
        return CostAwareAdmission()
    raise ValueError(f"unknown admission policy {policy!r}")


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------
class ContentStore:
    """LRU content-addressed result cache with verified replay.

    Parameters:
        capacity_bytes: Result-byte budget; least-recently-used entries are
            evicted past it.  A single result larger than the budget is
            simply not cached.
        admission: An :class:`AdmissionPolicy`, a policy name, or ``None``
            for plain LRU.
        reverify_every: Re-hash a served entry against its pinned digest
            every Nth hit.  ``1`` (default) verifies every hit — the
            historical behavior; ``0`` disables reverification entirely
            (the digest is still pinned and still travels with carried
            results, so cross-node transfers stay verified).  Skipped and
            performed verifications are both counted.
    """

    def __init__(
        self,
        capacity_bytes: int = 16 << 20,
        admission: Union[None, str, AdmissionPolicy] = None,
        reverify_every: int = 1,
    ):
        if capacity_bytes < 1:
            raise ValueError("capacity_bytes must be positive")
        if reverify_every < 0:
            raise ValueError("reverify_every must be >= 0")
        self.capacity_bytes = int(capacity_bytes)
        self.admission = make_admission(admission)
        self.reverify_every = int(reverify_every)
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self._lock = threading.RLock()
        self.resident_bytes = 0
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0
        self.integrity_failures = 0
        self.admission_rejections = 0
        self.reverifications = 0
        self.reverify_skipped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    # ------------------------------------------------------------------
    def put(
        self,
        name: str,
        result: np.ndarray,
        kernel_digest: Optional[str] = None,
        cost: float = 1.0,
    ) -> bool:
        """Cache ``result`` under ``name``; False if rejected.

        Rejection means the result exceeded the byte budget outright, or
        the admission policy judged it not worth the LRU victims it would
        evict (counted in ``admission_rejections``).  Re-inserting an
        existing name refreshes its recency (the bytes are
        content-addressed, so any two correct producers wrote the same
        ones).  ``cost`` is the producer's measured recompute expense
        (milliseconds) — the currency cost-aware admission trades in.
        """
        entry = _Entry(result, kernel_digest, cost=cost)
        with self._lock:
            if entry.nbytes > self.capacity_bytes:
                return False
            old = self._entries.pop(name, None)
            if old is not None:
                self.resident_bytes -= old.nbytes
            while self.resident_bytes + entry.nbytes > self.capacity_bytes:
                victim_name = next(iter(self._entries))
                victim = self._entries[victim_name]
                if not self.admission.admit(
                    name, entry.nbytes, entry.cost, victim_name, victim.cost
                ):
                    # Not worth the eviction: restore nothing, cache
                    # nothing.  (A refreshed name was already removed
                    # above, but refreshes free exactly the bytes they
                    # need, so this branch is unreachable for them.)
                    self.admission_rejections += 1
                    return False
                del self._entries[victim_name]
                self.resident_bytes -= victim.nbytes
                self.evictions += 1
            self._entries[name] = entry
            self.resident_bytes += entry.nbytes
            self.insertions += 1
            return True

    def get(self, name: str) -> Optional[np.ndarray]:
        """The verified read-only result for ``name``, or ``None``.

        A hit refreshes recency; a digest mismatch (bit rot, a buggy
        producer mutating shared memory) drops the entry and reports a
        miss — the fog must re-execute rather than serve corrupt bytes.
        With ``reverify_every=N`` the re-hash runs on every Nth hit per
        entry; skipped checks are counted in ``reverify_skipped``.
        """
        with self._lock:
            self.admission.record_get(name)
            entry = self._entries.get(name)
            if entry is None:
                self.misses += 1
                return None
            entry.hits_since_verify += 1
            if self.reverify_every and entry.hits_since_verify >= self.reverify_every:
                entry.hits_since_verify = 0
                self.reverifications += 1
                if array_digest(entry.result) != entry.digest:
                    del self._entries[name]
                    self.resident_bytes -= entry.nbytes
                    self.integrity_failures += 1
                    self.misses += 1
                    return None
            else:
                self.reverify_skipped += 1
            self._entries.move_to_end(name)
            self.hits += 1
            return entry.result

    def kernel_digest(self, name: str) -> Optional[str]:
        """The kernel provenance recorded for ``name`` (no recency effect)."""
        with self._lock:
            entry = self._entries.get(name)
            return entry.kernel_digest if entry is not None else None

    def cost(self, name: str) -> Optional[float]:
        """The recompute cost recorded for ``name`` (no recency effect)."""
        with self._lock:
            entry = self._entries.get(name)
            return entry.cost if entry is not None else None

    def clear(self) -> None:
        """Drop every entry (node crash / memory loss); stats survive."""
        with self._lock:
            self._entries.clear()
            self.resident_bytes = 0

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "resident_bytes": self.resident_bytes,
                "capacity_bytes": self.capacity_bytes,
                "policy": self.admission.name,
                "reverify_every": self.reverify_every,
                "hits": self.hits,
                "misses": self.misses,
                "insertions": self.insertions,
                "evictions": self.evictions,
                "integrity_failures": self.integrity_failures,
                "admission_rejections": self.admission_rejections,
                "reverifications": self.reverifications,
                "reverify_skipped": self.reverify_skipped,
            }

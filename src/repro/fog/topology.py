"""repro.fog.topology — routing named computations across a fog of nodes.

The multi-node story of the ROADMAP, in one process: a
:class:`FogTopology` owns N :class:`~repro.fog.node.FogNode`\\ s, assigns
each capability (serve-layer batch key) to ``replicas`` owner nodes by
**rendezvous hashing** — deterministic, stable under membership churn, and
with a built-in fallback order — and drives the NFN request walk:

1. the interest enters at an ingress node (round-robin);
2. the ingress answers from its content store if the name is cached;
3. otherwise it executes locally if it advertises the capability;
4. otherwise it **forwards** to the capability's owners in rendezvous
   order — skipping dead owners counts a *reroute* — and on success the
   result is cached both at the executing owner and along the reverse
   path back to the ingress (on-path caching, so repeated interests hit
   closer and closer to where they enter).

Node loss is first-class: :meth:`FogTopology.crash` wipes the node's
volatile content store, interests re-route to surviving replicas, and the
caches re-populate as results flow again — :class:`ChurnDriver` scripts
exactly that from a deterministic
:class:`~repro.engine.faults.ChaosPlan`.  When every replica of a
capability is down the interest fails *loudly* with
:class:`FogUnavailable`: the fog rejects what it cannot serve, it never
fabricates or drops an accepted answer.
"""

from __future__ import annotations

import hashlib
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..engine.faults import ChaosPlan
from ..engine.observe import METRICS, TRACER, Metrics
from ..serve.executor import DeadlineExceeded, EngineExecutor
from ..serve.protocol import Request
from .names import ComputationName, name_request
from .node import FogNode, NodeDown
from .store import ContentStore, make_admission

__all__ = ["FogTopology", "FogUnavailable", "ChurnDriver"]


class FogUnavailable(Exception):
    """No alive node can serve this computation right now (retryable)."""

    def __init__(self, message: str, name: Optional[str] = None):
        super().__init__(message)
        self.name = name


def _slug(batch_key: Tuple) -> str:
    return "/".join(str(part) for part in batch_key)


def _rendezvous_score(node_name: str, capability_slug: str) -> int:
    """Highest-random-weight score of ``node`` for ``capability``."""
    digest = hashlib.sha256(f"{node_name}|{capability_slug}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class _Gate:
    """One in-flight interest's singleflight rendezvous point."""

    __slots__ = ("event", "result", "error")

    def __init__(self):
        self.event = threading.Event()
        self.result: Optional[np.ndarray] = None
        self.error: Optional[BaseException] = None


class FogTopology:
    """An in-process fog of edge nodes routing named computations.

    Parameters:
        nodes: Node count, or explicit node names.
        replicas: Owners per capability (rendezvous top-``replicas``).
            2+ gives the reroute path somewhere to go when a primary dies.
        capacity_bytes: Per-node content-store budget.
        max_hops: Forwarding budget per interest (ingress hop included).
        executor_opts: Keyword arguments for each node's
            :class:`~repro.serve.executor.EngineExecutor` (e.g. ``workers``).
        store_policy: Content-store admission policy per node: ``"lru"``
            (classic, the default) or ``"costaware"``.
        store_reverify: Re-hash cached entries against their pinned
            digest every Nth hit (1 = every hit, 0 = never).
    """

    def __init__(
        self,
        nodes: int = 4,
        replicas: int = 2,
        capacity_bytes: int = 16 << 20,
        max_hops: int = 8,
        metrics: Optional[Metrics] = None,
        executor_opts: Optional[dict] = None,
        store_policy: str = "lru",
        store_reverify: int = 1,
    ):
        if isinstance(nodes, int):
            if nodes < 1:
                raise ValueError("a fog needs at least one node")
            names = [f"n{i}" for i in range(nodes)]
        else:
            names = [str(n) for n in nodes]
            if not names:
                raise ValueError("a fog needs at least one node")
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate node names: {names}")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.metrics = metrics if metrics is not None else METRICS
        opts = dict(executor_opts or {})
        opts.setdefault("metrics", self.metrics)
        self.nodes: List[FogNode] = [
            FogNode(
                name,
                executor=EngineExecutor(**opts),
                store=ContentStore(
                    capacity_bytes=capacity_bytes,
                    admission=make_admission(store_policy),
                    reverify_every=store_reverify,
                ),
                metrics=self.metrics,
            )
            for name in names
        ]
        self._by_name: Dict[str, FogNode] = {n.name: n for n in self.nodes}
        self.replicas = min(int(replicas), len(self.nodes))
        self.max_hops = int(max_hops)
        #: Capability -> owner nodes in rendezvous (fallback) order.
        self._owners: Dict[Tuple, List[FogNode]] = {}
        self._ingress_counter = 0
        #: Singleflight gates: in-flight interest URI -> rendezvous gate.
        self._inflight: Dict[str, "_Gate"] = {}
        self._sf_lock = threading.Lock()
        self.submitted = 0
        self.completed = 0
        self.collapsed = 0
        self.cache_hits = 0
        self.forwards = 0
        self.reroutes = 0
        self.unavailable = 0

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def node(self, name: str) -> FogNode:
        return self._by_name[name]

    def alive_nodes(self) -> List[FogNode]:
        return [n for n in self.nodes if n.alive]

    def crash(self, name: str) -> None:
        """Take a node down (volatile content store is lost with it)."""
        self._by_name[name].crash()

    def revive(self, name: str) -> None:
        """Bring a node back, empty-handed: its caches refill from traffic."""
        self._by_name[name].revive()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def owners(self, batch_key: Tuple) -> List[FogNode]:
        """The capability's owner nodes, primary first (lazily assigned).

        Assignment is rendezvous hashing over *all* nodes — dead ones
        included — so the owner list is a pure function of the membership
        roster and the capability, never of crash history.  A node that
        crashes and revives owns exactly what it owned before.
        """
        owners = self._owners.get(batch_key)
        if owners is None:
            slug = _slug(batch_key)
            ranked = sorted(
                self.nodes,
                key=lambda n: _rendezvous_score(n.name, slug),
                reverse=True,
            )
            owners = ranked[: self.replicas]
            for node in owners:
                node.advertise(batch_key)
            self._owners[batch_key] = owners
            self.metrics.inc("fog.capabilities_assigned")
        return owners

    def live_owners(self, batch_key: Tuple, visited=()) -> List[FogNode]:
        """Owners currently worth forwarding to, in rendezvous order.

        The topology's liveness view is the ``alive`` flag; subclasses and
        the cross-process fabric substitute a *measured* verdict here
        (heartbeat failure detector + circuit breaker) without touching
        the walk itself.
        """
        visited = set(visited)
        return [
            owner
            for owner in self.owners(batch_key)
            if owner.alive and owner.name not in visited
        ]

    def _ingress(self) -> FogNode:
        """Round-robin over alive nodes (any edge node can take traffic)."""
        alive = self.alive_nodes()
        if not alive:
            raise FogUnavailable("every node in the fog is down")
        node = alive[self._ingress_counter % len(alive)]
        self._ingress_counter += 1
        return node

    # ------------------------------------------------------------------
    # The NFN request walk
    # ------------------------------------------------------------------
    def submit(self, request: Request, ingress: Optional[str] = None) -> np.ndarray:
        """Route one named computation through the fog and return its result.

        Duplicate in-flight interests for the same name **collapse**
        (NFN interest aggregation): concurrent submitters of an already
        in-flight URI wait on the leader's gate instead of walking the
        fog again, counted in ``collapsed``.  A collapsed waiter still
        honors its own ``deadline_s`` while waiting, and retries as
        leader if the first walk fails.

        Raises :class:`FogUnavailable` when no alive node can serve it
        (rejected, not wrong), or whatever the executing engine raised.
        """
        self.submitted += 1
        self.metrics.inc("fog.submitted")
        name = name_request(request)
        uri = name.uri()
        while True:
            with self._sf_lock:
                gate = self._inflight.get(uri)
                leading = gate is None
                if leading:
                    gate = self._inflight[uri] = _Gate()
            if leading:
                try:
                    entry = (
                        self._by_name[ingress]
                        if ingress is not None
                        else self._ingress()
                    )
                    with TRACER.span(
                        "fog.submit", interest=uri, ingress=entry.name
                    ):
                        result = self._walk(name, request, entry)
                    gate.result = result
                except BaseException as err:
                    gate.error = err
                    raise
                finally:
                    with self._sf_lock:
                        self._inflight.pop(uri, None)
                    gate.event.set()
            else:
                self.collapsed += 1
                self.metrics.inc("fog.collapsed")
                timeout = None
                if request.deadline_s is not None:
                    timeout = max(0.0, request.deadline_s - time.monotonic())
                if not gate.event.wait(timeout):
                    raise DeadlineExceeded(
                        f"deadline passed waiting on collapsed interest {uri}"
                    )
                if gate.error is not None:
                    continue  # leader failed: walk it ourselves
                result = gate.result
            self.completed += 1
            self.metrics.inc("fog.completed")
            return result

    def _walk(self, name: ComputationName, request: Request, entry: FogNode) -> np.ndarray:
        key = request.batch_key()
        path: List[FogNode] = []
        node = entry
        hops = 0
        while True:
            if hops > self.max_hops:
                self.unavailable += 1
                self.metrics.inc("fog.unavailable")
                raise FogUnavailable(
                    f"hop budget {self.max_hops} exhausted for {name.uri()}",
                    name=name.uri(),
                )
            try:
                cached = node.lookup(name)
                if cached is not None:
                    self.cache_hits += 1
                    self.metrics.inc("fog.cache_hits")
                    self._repopulate(path, name, cached)
                    return cached
                if node.serves(key):
                    result = node.execute(request)
                    self._repopulate(path, name, result)
                    return result
            except NodeDown:
                pass  # stale route: fall through to the next candidate
            # Forward: this node can't serve the name — send the interest
            # to the capability's owners, skipping nodes already visited.
            path.append(node)
            visited = {n.name for n in path}
            candidates = self.live_owners(key, visited)
            if not candidates:
                self.unavailable += 1
                self.metrics.inc("fog.unavailable")
                raise FogUnavailable(
                    f"no alive owner for {_slug(key)} (interest {name.uri()})",
                    name=name.uri(),
                )
            # A reroute is a forward that had to skip the rendezvous
            # primary — it is down, or it was the dead node just left.
            primary = self.owners(key)[0]
            node = candidates[0]
            if node is not primary and (not primary.alive or primary.name in visited):
                self.reroutes += 1
                self.metrics.inc("fog.reroutes")
                self.metrics.inc(f"fog.node.{node.name}.reroutes_absorbed")
            hops += 1
            self.forwards += 1
            self.metrics.inc("fog.forwards")
            self.metrics.inc(f"fog.node.{path[-1].name}.forwards")

    def _repopulate(self, path: Sequence[FogNode], name: ComputationName, result: np.ndarray) -> None:
        """On-path caching: the result rides the reverse path to the ingress."""
        for node in path:
            if node.alive:
                node.carry(name, result)
                self.metrics.inc("fog.repopulations")

    # ------------------------------------------------------------------
    # Lifecycle + observability
    # ------------------------------------------------------------------
    def close(self) -> None:
        for node in self.nodes:
            node.close()

    def restart(self) -> None:
        for node in self.nodes:
            node.restart()

    def stats(self) -> Dict[str, object]:
        return {
            "nodes": {n.name: n.stats() for n in self.nodes},
            "alive": len(self.alive_nodes()),
            "replicas": self.replicas,
            "submitted": self.submitted,
            "completed": self.completed,
            "collapsed": self.collapsed,
            "cache_hits": self.cache_hits,
            "forwards": self.forwards,
            "reroutes": self.reroutes,
            "unavailable": self.unavailable,
            "capabilities": {
                _slug(key): [n.name for n in owners]
                for key, owners in self._owners.items()
            },
        }

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


# ----------------------------------------------------------------------
# Churn: scripted node loss and recovery
# ----------------------------------------------------------------------
class ChurnDriver:
    """Deterministic membership churn from a :class:`ChaosPlan`.

    Each :meth:`step` consults ``plan.decide(step, node_index)`` per node:
    ``"crash"`` takes the node down for ``downtime_steps`` steps (its
    content store is lost), anything else leaves it alone; nodes whose
    downtime has elapsed revive empty.  ``min_alive`` keeps the simulation
    honest rather than degenerate — a fog with zero alive nodes serves
    nothing, which tests nothing.

    Like every fault plan in this repo the sequence is a pure function of
    ``(plan.seed, step, node index)``: the same plan crashes the same
    nodes at the same steps in every run.
    """

    def __init__(
        self,
        topology: FogTopology,
        plan: ChaosPlan,
        downtime_steps: int = 2,
        min_alive: int = 1,
    ):
        if downtime_steps < 1:
            raise ValueError("downtime_steps must be >= 1")
        if min_alive < 1:
            raise ValueError("min_alive must be >= 1")
        self.topology = topology
        self.plan = plan
        self.downtime_steps = int(downtime_steps)
        self.min_alive = int(min_alive)
        self._revive_at: Dict[str, int] = {}
        self.crashes = 0
        self.revivals = 0

    def step(self, step_idx: int) -> Dict[str, List[str]]:
        """Advance churn one step; returns ``{"crashed": [...], "revived": [...]}``."""
        topo = self.topology
        revived = [
            name for name, due in self._revive_at.items() if step_idx >= due
        ]
        for name in revived:
            del self._revive_at[name]
            topo.revive(name)
            self.revivals += 1
            topo.metrics.inc("fog.churn.revivals")
        crashed = []
        for idx, node in enumerate(topo.nodes):
            if not node.alive:
                continue
            if self.plan.decide(step_idx, idx) != "crash":
                continue
            if len(topo.alive_nodes()) <= self.min_alive:
                break  # keep the fog serving: stop crashing this step
            topo.crash(node.name)
            self._revive_at[node.name] = step_idx + self.downtime_steps
            crashed.append(node.name)
            self.crashes += 1
            topo.metrics.inc("fog.churn.crashes")
        return {"crashed": crashed, "revived": revived}

    def stats(self) -> Dict[str, int]:
        return {
            "crashes": self.crashes,
            "revivals": self.revivals,
            "currently_down": len(self._revive_at),
        }

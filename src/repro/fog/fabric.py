"""repro.fog.fabric — the fog as real processes behind real sockets.

:class:`FogFabric` is the cross-process promotion of
:class:`~repro.fog.topology.FogTopology`: the same rendezvous-owned
capabilities, named computations and content stores, but every node is a
supervised OS process (:mod:`repro.fog.supervisor`) speaking the NDJSON
frame protocol over localhost sockets (:mod:`repro.fog.peer`).  The
failure modes a method-call simulator cannot exercise — ``kill -9``, a
SIGSTOP-stalled peer, a half-open socket, a slow network — are the point:

* **Liveness view** — routing consults the supervisor's heartbeat verdict
  per peer, so the rendezvous walk skips nodes the failure detector has
  marked suspect, not just nodes a test politely flagged dead.
* **Circuit breakers** — each peer sits behind a closed → open →
  half-open :class:`~repro.fog.peer.CircuitBreaker`; once a peer has
  failed ``breaker_failures`` times in a row, interests fail fast past it
  instead of queueing on a corpse until their deadlines drain.
* **Deadline budget across hops** — every interest carries its remaining
  milliseconds; each retry and forward decrements it, retries use
  deterministic jittered exponential backoff clamped to what is left, and
  nothing ever retries past the budget (a peer receiving a spent budget
  refuses without executing).
* **Hedged interests** — with ``hedge_ms`` set, a primary that has not
  answered within the hedge delay gets a racing duplicate sent to the
  next replica; first good answer wins (content-addressed results make
  duplicates harmless — both compute the same bytes).
* **Graceful degradation** — when every owner is unreachable the fabric
  executes *locally*, in-process, instead of failing the request
  (``degrade_local=True``, counted in ``degraded_local``, never silent).
  The engine is deterministic, so the degraded answer is byte-identical
  to the fabric answer — reject-or-exact holds all the way down; with
  degradation disabled the fabric raises
  :class:`~repro.fog.topology.FogUnavailable` exactly like the topology.
* **Warm restarts** — the supervisor respawns killed nodes with jittered
  backoff, and the fabric replays its hot-result journal into the fresh
  store, every carry re-verified against its pinned sha256 digest.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..engine.observe import METRICS, TRACER, Metrics
from ..engine.registry import array_digest
from ..serve.executor import DeadlineExceeded, EngineExecutor
from ..serve.protocol import (
    Request,
    carry_frame,
    decode_array,
    interest_frame,
)
from .names import name_request
from .peer import CircuitBreaker, PeerClient, PeerError
from .supervisor import FabricSupervisor
from .topology import FogUnavailable, _rendezvous_score, _slug

__all__ = ["FogFabric", "retry_backoff_ms"]

#: Hot-journal size: how many recent results are replayed into a freshly
#: restarted node's content store (bounded so warm restart stays cheap).
_HOT_JOURNAL = 64


class _Gate:
    """One in-flight interest's singleflight rendezvous point."""

    __slots__ = ("event", "result", "error")

    def __init__(self):
        self.event = threading.Event()
        self.result: Optional[np.ndarray] = None
        self.error: Optional[BaseException] = None


def retry_backoff_ms(
    base_ms: float, attempt: int, token: str, cap_ms: float = 250.0
) -> float:
    """Jittered exponential retry delay, pure function of its arguments.

    The jitter factor in ``[0.5, 1.5)`` derives from a sha256 of
    ``(token, attempt)`` — deterministic for tests, decorrelated across
    interests (the token is the interest URI), so a burst of failures
    never retries in lockstep.
    """
    base = float(base_ms) * (2 ** int(attempt))
    digest = hashlib.sha256(f"{token}|{attempt}".encode()).digest()
    factor = 0.5 + int.from_bytes(digest[:8], "big") / 2**64
    return min(float(cap_ms), base * factor)


class FogFabric:
    """A supervised multi-process fog routing named computations.

    Drop-in for :class:`~repro.fog.topology.FogTopology`'s serving
    contract (``submit`` / ``close`` / ``restart`` / ``stats`` /
    ``crash``), which is how :class:`~repro.fog.executor.FogExecutor`
    serves through it unchanged.

    Parameters:
        nodes: Node-process count, or explicit names.
        replicas: Owners per capability (rendezvous top-``replicas``).
        capacity_bytes: Per-node content-store budget.
        heartbeat_ms / miss_budget: Failure-detector cadence and patience.
        breaker_failures / breaker_reset_ms: Circuit-breaker trip
            threshold and open-state cooldown.
        retries / retry_backoff_base_ms: Per-owner attempt budget and
            backoff base (jittered, clamped to the deadline budget).
        hedge_ms: Send a racing interest to the next replica when the
            primary is silent this long (``None`` disables hedging).
        default_budget_ms: Deadline budget for requests that carry none.
        degrade_local: Execute in-process when every owner is unreachable
            (counted) instead of raising :class:`FogUnavailable`.
        max_restarts / restart_backoff_base_s: Supervisor restart budget.
        executor_opts: Options for each node's engine executor (and the
            local degradation executor, so both produce identical bytes).
        store_policy: Content-store admission policy per node: ``"lru"``
            (admit everything, classic) or ``"costaware"``
            (frequency-sketch × recompute-cost admission).
        store_reverify: Re-hash cached entries against their pinned
            digest every Nth hit (1 = every hit, 0 = never).
        node_workers: Worker threads per node process serving data-plane
            frames concurrently (heartbeats are always answered inline).
    """

    def __init__(
        self,
        nodes: int = 3,
        replicas: int = 2,
        capacity_bytes: int = 16 << 20,
        heartbeat_ms: float = 100.0,
        miss_budget: int = 3,
        breaker_failures: int = 3,
        breaker_reset_ms: float = 500.0,
        retries: int = 2,
        retry_backoff_base_ms: float = 10.0,
        hedge_ms: Optional[float] = None,
        default_budget_ms: float = 2000.0,
        degrade_local: bool = True,
        max_restarts: int = 5,
        restart_backoff_base_s: float = 0.05,
        request_timeout_s: float = 30.0,
        metrics: Optional[Metrics] = None,
        executor_opts: Optional[dict] = None,
        store_policy: str = "lru",
        store_reverify: int = 1,
        node_workers: int = 4,
        start: bool = True,
    ):
        if isinstance(nodes, int):
            if nodes < 1:
                raise ValueError("a fabric needs at least one node")
            names = [f"n{i}" for i in range(nodes)]
        else:
            names = [str(n) for n in nodes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate node names: {names}")
        self.node_names = names
        self.replicas = min(int(replicas), len(names))
        self.metrics = metrics if metrics is not None else METRICS
        self.executor_opts = dict(executor_opts or {})
        self.retries = int(retries)
        self.retry_backoff_base_ms = float(retry_backoff_base_ms)
        self.hedge_ms = None if hedge_ms is None else float(hedge_ms)
        self.default_budget_ms = float(default_budget_ms)
        self.degrade_local = bool(degrade_local)
        self.request_timeout_s = float(request_timeout_s)
        self.supervisor = FabricSupervisor(
            names,
            node_opts={
                "executor_opts": self.executor_opts,
                "capacity_bytes": int(capacity_bytes),
                "store_policy": str(store_policy),
                "store_reverify": int(store_reverify),
                "workers": int(node_workers),
            },
            heartbeat_ms=heartbeat_ms,
            miss_budget=miss_budget,
            restart_backoff_base_s=restart_backoff_base_s,
            max_restarts=max_restarts,
            request_timeout_s=request_timeout_s,
            metrics=self.metrics,
            on_up=self._on_node_up,
        )
        self.breakers: Dict[str, CircuitBreaker] = {
            n: CircuitBreaker(
                failure_threshold=breaker_failures,
                reset_after_s=breaker_reset_ms / 1e3,
                metrics=self.metrics,
                name=n,
            )
            for n in names
        }
        self._owners: Dict[Tuple, List[str]] = {}
        self._owned_keys: Dict[str, Set[Tuple]] = {n: set() for n in names}
        self._hot: "OrderedDict[str, Tuple[np.ndarray, str, float]]" = OrderedDict()
        self._local: Optional[EngineExecutor] = None
        self._lock = threading.Lock()
        self._inflight: Dict[str, "_Gate"] = {}
        self._sf_lock = threading.Lock()
        self._hedge_pool = ThreadPoolExecutor(
            max_workers=max(2, 2 * len(names)), thread_name_prefix="fabric-hedge"
        )
        self._ingress_counter = 0
        self.submitted = 0
        self.completed = 0
        self.collapsed = 0
        self.cache_hits = 0
        self.remote_execs = 0
        self.retries_used = 0
        self.hedges = 0
        self.hedge_wins = 0
        self.degraded = 0
        self.unavailable = 0
        if start:
            self.supervisor.start()

    # ------------------------------------------------------------------
    # Ownership (rendezvous over the full roster, like the topology)
    # ------------------------------------------------------------------
    def owners(self, batch_key: Tuple) -> List[str]:
        """Owner names, primary first — a pure function of the roster."""
        with self._lock:
            owners = self._owners.get(batch_key)
            if owners is not None:
                return owners
        slug = _slug(batch_key)
        ranked = sorted(
            self.node_names,
            key=lambda n: _rendezvous_score(n, slug),
            reverse=True,
        )
        owners = ranked[: self.replicas]
        with self._lock:
            self._owners[batch_key] = owners
            for name in owners:
                self._owned_keys[name].add(batch_key)
        for name in owners:
            self._advertise(name, batch_key)
        self.metrics.inc("fabric.capabilities_assigned")
        return owners

    def _advertise(self, name: str, batch_key: Tuple) -> None:
        # Never block the data path on a suspect peer: the on_up hook
        # re-advertises everything the moment it is welcomed back.
        if not self.supervisor.serving(name):
            return
        client = self.supervisor.client(name)
        if client is None:
            return
        try:
            client.call(
                {"op": "advertise", "batch_key": list(batch_key)}, timeout_s=5.0
            )
        except PeerError:
            pass  # the warm-restart hook re-advertises when it comes back

    def _on_node_up(self, name: str, client: PeerClient) -> None:
        """Warm restart: re-advertise owned capabilities, replay hot results."""
        self.breakers[name].reset()
        with self._lock:
            keys = list(self._owned_keys.get(name, ()))
            hot = list(self._hot.items())
        if not keys and not hot:
            return  # initial spawn: nothing to restore yet
        # The restart-with-state event already happened; count it before
        # touching the wire so a flaky advertise can't erase the record.
        self.metrics.inc("fabric.warm_restarts")
        for key in keys:
            for attempt in (0, 1):
                try:
                    client.call(
                        {"op": "advertise", "batch_key": list(key)}, timeout_s=5.0
                    )
                    break
                except PeerError:
                    if attempt:
                        # Leave the key to lazy re-advertise on the next
                        # interest; the reseed of the rest proceeds.
                        self.metrics.inc("fabric.warm_advert_failures")
        carried = 0
        for uri, (result, digest, cost) in hot:
            try:
                resp = client.call(
                    carry_frame(uri, result, digest, cost=cost, binary=True),
                    timeout_s=5.0,
                )
                if resp.get("accepted"):
                    carried += 1
            except PeerError:
                self.metrics.inc("fabric.warm_carry_failures")
                break
        if carried:
            self.metrics.inc("fabric.warm_carries", carried)

    # ------------------------------------------------------------------
    # Liveness view: supervisor verdict + breaker state
    # ------------------------------------------------------------------
    def routable(self, name: str) -> bool:
        """May an interest be sent to this peer right now?"""
        return self.supervisor.serving(name) and self.breakers[
            name
        ].state != CircuitBreaker.OPEN

    def _ingress(self) -> Optional[str]:
        candidates = [n for n in self.node_names if self.routable(n)]
        if not candidates:
            return None
        name = candidates[self._ingress_counter % len(candidates)]
        self._ingress_counter += 1
        return name

    # ------------------------------------------------------------------
    # The fabric request walk
    # ------------------------------------------------------------------
    def submit(self, request: Request, budget_ms: Optional[float] = None) -> np.ndarray:
        """Route one named computation through the fabric.

        Duplicate in-flight interests for the same :class:`ComputationName`
        **collapse**: the first becomes the leader and walks the fabric;
        the rest attach as waiters to its gate (NFN-style interest
        aggregation — counted in ``collapsed``) instead of re-dialing or
        re-executing.  A collapsed waiter still honors its *own* deadline
        budget: it waits only as long as its budget allows, and if the
        leader fails it retries as leader with whatever budget it has
        left.  Content-addressed results make the sharing safe — every
        in-flight duplicate would have computed the same bytes.

        Returns the result array, or raises :class:`DeadlineExceeded`
        (budget spent), :class:`FogUnavailable` (no owner reachable and
        degradation disabled) — rejected, never wrong, never silent.
        """
        self.submitted += 1
        self.metrics.inc("fabric.submitted")
        t0 = time.monotonic()
        if budget_ms is None:
            if request.deadline_s is not None:
                budget_ms = (request.deadline_s - t0) * 1e3
            else:
                budget_ms = self.default_budget_ms
        deadline = t0 + max(0.0, float(budget_ms)) / 1e3
        name = name_request(request)
        uri = name.uri()
        while True:
            with self._sf_lock:
                gate = self._inflight.get(uri)
                leading = gate is None
                if leading:
                    gate = self._inflight[uri] = _Gate()
            if leading:
                try:
                    with TRACER.span("fabric.submit", interest=uri):
                        result = self._walk(request, uri, deadline)
                    gate.result = result
                except BaseException as err:
                    gate.error = err
                    raise
                finally:
                    with self._sf_lock:
                        self._inflight.pop(uri, None)
                    gate.event.set()
            else:
                self.collapsed += 1
                self.metrics.inc("fabric.collapsed")
                remaining_s = deadline - time.monotonic()
                if remaining_s <= 0 or not gate.event.wait(remaining_s):
                    self.metrics.inc("fabric.deadline_exhausted")
                    raise DeadlineExceeded(
                        f"deadline budget spent waiting on collapsed interest {uri}"
                    )
                if gate.error is not None:
                    continue  # leader failed: lead with our remaining budget
                result = gate.result
            self.completed += 1
            self.metrics.inc("fabric.completed")
            self.metrics.observe("fabric.submit_s", time.monotonic() - t0)
            return result

    def _remaining_ms(self, deadline: float) -> float:
        return (deadline - time.monotonic()) * 1e3

    def _walk(self, request: Request, uri: str, deadline: float) -> np.ndarray:
        key = request.batch_key()
        owners = self.owners(key)
        tried: Set[str] = set()
        # Hop 1 — the ingress edge node: cache answer or owner execution.
        ingress = self._ingress()
        if ingress is not None and self._remaining_ms(deadline) > 0:
            tried.add(ingress)
            result = self._try_peer(ingress, request, uri, deadline)
            if result is not None:
                return result
        elif ingress is None:
            self.metrics.inc("fabric.no_ingress")
        # Hop 2..n — the capability's owners in rendezvous order, each
        # with its retry budget, skipping whoever was already tried.
        candidates = [n for n in owners if n not in tried]
        reroute_counted = False
        for idx, owner in enumerate(candidates):
            if not self.routable(owner):
                if not reroute_counted and owner == owners[0]:
                    self.metrics.inc("fabric.reroutes")
                    reroute_counted = True
                continue
            next_replica = next(
                (n for n in candidates[idx + 1 :] if self.routable(n)), None
            )
            for attempt in range(self.retries + 1):
                remaining = self._remaining_ms(deadline)
                if remaining <= 0:
                    break
                if attempt > 0:
                    delay = retry_backoff_ms(
                        self.retry_backoff_base_ms, attempt - 1, uri
                    )
                    # Never sleep (or retry) past the deadline budget.
                    delay = min(delay, remaining)
                    if delay <= 0:
                        break
                    time.sleep(delay / 1e3)
                    if self._remaining_ms(deadline) <= 0:
                        break
                    self.retries_used += 1
                    self.metrics.inc("fabric.retries")
                result = self._try_peer(
                    owner, request, uri, deadline, hedge_to=next_replica
                )
                if result is not None:
                    # Reverse-path caching: the answer rides back to the
                    # ingress so repeated interests hit where they enter.
                    if ingress is not None and ingress != owner:
                        self._carry_to(ingress, uri, result)
                    return result
                if not self.routable(owner):
                    break  # breaker tripped mid-attempts: move on
            tried.add(owner)
        if self._remaining_ms(deadline) <= 0:
            self.metrics.inc("fabric.deadline_exhausted")
            raise DeadlineExceeded(
                f"deadline budget spent routing {uri} (tried {sorted(tried)})"
            )
        # Degradation ladder, last rung: every owner unreachable — serve
        # the request locally (counted) rather than serving nothing.
        if self.degrade_local:
            return self._execute_local(request, uri)
        self.unavailable += 1
        self.metrics.inc("fabric.unavailable")
        raise FogUnavailable(
            f"no reachable owner for {_slug(key)} (interest {uri})", name=uri
        )

    def _try_peer(
        self,
        name: str,
        request: Request,
        uri: str,
        deadline: float,
        hedge_to: Optional[str] = None,
    ) -> Optional[np.ndarray]:
        """One interest to one peer (optionally hedged); None on failure."""
        breaker = self.breakers[name]
        if not breaker.allow():
            return None
        remaining = self._remaining_ms(deadline)
        if remaining <= 0:
            return None
        timeout_s = min(self.request_timeout_s, remaining / 1e3)
        if self.hedge_ms is not None and hedge_to is not None:
            return self._hedged_call(name, hedge_to, request, uri, deadline)
        client = self.supervisor.client(name)
        if client is None:
            return None
        try:
            resp = client.call(
                interest_frame(request, budget_ms=remaining, binary=True),
                timeout_s=timeout_s,
            )
        except PeerError:
            breaker.record_failure()
            self.metrics.inc("fabric.peer_failures")
            return None
        breaker.record_success()
        return self._accept(resp, uri)

    def _hedged_call(
        self,
        primary: str,
        secondary: str,
        request: Request,
        uri: str,
        deadline: float,
    ) -> Optional[np.ndarray]:
        """Race the primary against a delayed duplicate on the secondary.

        Both legs run on one-shot connections so an abandoned loser can
        never desynchronize a persistent stream.  Breaker outcomes are
        recorded per leg as each completes.
        """

        def leg(peer_name: str):
            client = self.supervisor.client(peer_name)
            if client is None:
                raise PeerError(f"no client for {peer_name}")
            remaining = self._remaining_ms(deadline)
            if remaining <= 0:
                raise PeerError("budget exhausted before send")
            try:
                resp = client.call(
                    interest_frame(request, budget_ms=remaining, binary=True),
                    timeout_s=min(self.request_timeout_s, remaining / 1e3),
                    oneshot=True,
                )
            except PeerError:
                self.breakers[peer_name].record_failure()
                self.metrics.inc("fabric.peer_failures")
                raise
            self.breakers[peer_name].record_success()
            return resp

        futures = {self._hedge_pool.submit(leg, primary): primary}
        hedged = False
        while futures:
            remaining_s = max(0.0, (deadline - time.monotonic()))
            if remaining_s == 0:
                break
            wait_s = remaining_s
            if not hedged:
                wait_s = min(wait_s, self.hedge_ms / 1e3)
            done, _ = wait(futures, timeout=wait_s, return_when=FIRST_COMPLETED)
            for fut in done:
                peer_name = futures.pop(fut)
                err = fut.exception()
                if err is not None:
                    continue
                resp = fut.result()
                result = self._accept(resp, uri)
                if result is not None:
                    if hedged and peer_name == secondary:
                        self.hedge_wins += 1
                        self.metrics.inc("fabric.hedge_wins")
                    return result
            if not done and not hedged:
                hedged = True
                self.hedges += 1
                self.metrics.inc("fabric.hedges")
                futures[self._hedge_pool.submit(leg, secondary)] = secondary
        return None

    def _carry_to(self, name: str, uri: str, result: np.ndarray) -> None:
        """Best-effort carry of a result into a peer's content store."""
        if not self.routable(name):
            return
        client = self.supervisor.client(name)
        if client is None:
            return
        with self._lock:
            hot = self._hot.get(uri)
        cost = hot[2] if hot is not None else None
        try:
            resp = client.call(
                carry_frame(uri, result, array_digest(result), cost=cost, binary=True),
                timeout_s=5.0,
            )
        except PeerError:
            return
        if resp.get("accepted"):
            self.metrics.inc("fabric.repopulations")

    def _accept(self, resp: dict, uri: str) -> Optional[np.ndarray]:
        """Validate one peer response; journal + repopulate on success."""
        if not resp.get("ok"):
            return None  # cant_serve / deadline / exec_failed: next candidate
        try:
            result = decode_array(resp.get("result"))
        except Exception:  # noqa: BLE001 — a bad payload is a failed peer
            self.metrics.inc("fabric.bad_payloads")
            return None
        digest = resp.get("digest")
        if digest != array_digest(result):
            # The wire integrity check: bytes that do not hash to the
            # producer's pinned digest are refused, exactly like a
            # content-store read that fails re-verification.
            self.metrics.inc("fabric.integrity_failures")
            return None
        if resp.get("source") == "cache":
            self.cache_hits += 1
            self.metrics.inc("fabric.cache_hits")
        else:
            self.remote_execs += 1
            self.metrics.inc("fabric.remote_execs")
        cost = float(resp.get("cost_ms", 1.0))
        self._journal(uri, result, digest, cost)
        return result

    def _journal(self, uri: str, result: np.ndarray, digest: str, cost: float) -> None:
        with self._lock:
            self._hot.pop(uri, None)
            self._hot[uri] = (result, digest, cost)
            while len(self._hot) > _HOT_JOURNAL:
                self._hot.popitem(last=False)

    def _execute_local(self, request: Request, uri: str) -> np.ndarray:
        """The degradation rung: in-process execution, counted, byte-exact."""
        with self._lock:
            if self._local is None:
                opts = dict(self.executor_opts)
                opts.setdefault("metrics", self.metrics)
                self._local = EngineExecutor(**opts)
            local = self._local
        started = time.perf_counter()
        results = local.execute(request.batch_key(), [request])
        result = results[0]
        if isinstance(result, Exception):
            raise result
        cost_ms = (time.perf_counter() - started) * 1e3
        self.degraded += 1
        self.metrics.inc("fabric.degraded_local")
        result = np.asarray(result)
        self._journal(uri, result, array_digest(result), cost_ms)
        return result

    # ------------------------------------------------------------------
    # Chaos + lifecycle + observability
    # ------------------------------------------------------------------
    def kill(self, name: str) -> Optional[int]:
        """SIGKILL a node process (the supervisor will restart it)."""
        return self.supervisor.kill(name)

    #: Topology-compatible alias: a fabric "crash" is a real SIGKILL.
    crash = kill

    def close(self) -> None:
        self._hedge_pool.shutdown(wait=False, cancel_futures=True)
        self.supervisor.stop()
        with self._lock:
            if self._local is not None:
                self._local.close()
                self._local = None

    def restart(self) -> None:
        """Post-chaos reset: trust every peer again (breakers close)."""
        for breaker in self.breakers.values():
            breaker.reset()

    def wait_all_serving(self, timeout_s: float = 30.0) -> bool:
        """Block until every node is routable again (restart recovery)."""
        t0 = time.monotonic()
        while time.monotonic() - t0 < timeout_s:
            if self.supervisor.all_serving():
                return True
            time.sleep(0.02)
        return self.supervisor.all_serving()

    def stats(self) -> Dict[str, object]:
        return {
            "nodes": self.supervisor.stats(),
            "breakers": {n: b.stats() for n, b in self.breakers.items()},
            "replicas": self.replicas,
            "serving": self.supervisor.serving_names(),
            "submitted": self.submitted,
            "completed": self.completed,
            "collapsed": self.collapsed,
            "cache_hits": self.cache_hits,
            "remote_execs": self.remote_execs,
            "retries": self.retries_used,
            "hedges": self.hedges,
            "hedge_wins": self.hedge_wins,
            "degraded_local": self.degraded,
            "unavailable": self.unavailable,
            "hot_journal": len(self._hot),
            "capabilities": {
                _slug(key): owners for key, owners in self._owners.items()
            },
        }

    def __enter__(self):
        self.supervisor.start()
        return self

    def __exit__(self, *exc):
        self.close()
        return False

"""repro.fog — named-function fog topology with content-addressed caching.

The paper's deployment shape (PAPER.md: many small posit-arithmetic nodes
near the data) as an in-process simulator, following the NFN pattern:
computations are *named* — workload, parameters, and the sha256 content
digests of their operands (:mod:`repro.fog.names`) — and the fog routes
each interest to a node that owns the kernel, caches the result under its
name (:mod:`repro.fog.store`), and re-routes around node loss
(:mod:`repro.fog.topology`).

Quickstart::

    import numpy as np
    from repro.fog import FogTopology
    from repro.serve.protocol import parse_request

    topo = FogTopology(nodes=4, replicas=2)
    req = parse_request({
        "id": "r1", "workload": "posit_matmul", "bits": 8, "es": 2,
        "a": [[1.0, 2.0]], "b": [[3.0], [4.0]],
    })
    y1 = topo.submit(req)      # executed at the owning node
    y2 = topo.submit(req)      # served from a content store, bit-identical
    assert y1.tobytes() == y2.tobytes()
    print(topo.stats()["cache_hits"])    # 1

Guarantees the tests pin:

* **Routing identity** — a result is byte-identical whether computed
  locally, forwarded across nodes, or replayed from any content store
  (``tests/test_fog_identity.py``, golden-vector backed).
* **Churn safety** — under :class:`~repro.engine.faults.ChaosPlan` node
  churn, every completed computation is still bit-exact; what the fog
  cannot serve it rejects with :class:`FogUnavailable`, never answers
  wrongly (``tests/test_fog_churn.py``, ``benchmarks/test_fog_churn.py``).

The serve front end dispatches into a fog with
``ServeConfig(fog_nodes=N)`` (see :class:`repro.fog.executor.FogExecutor`).
"""

from .executor import FogExecutor
from .fabric import FogFabric
from .frames import FrameAssembler, pack_frame, unpack_frame
from .names import ComputationName, name_request
from .node import FogNode, NodeDown
from .peer import CircuitBreaker, PeerClient, PeerError
from .store import (
    AdmissionPolicy,
    AdmitAll,
    ContentStore,
    CostAwareAdmission,
    make_admission,
)
from .supervisor import FabricSupervisor
from .topology import ChurnDriver, FogTopology, FogUnavailable

__all__ = [
    "ComputationName",
    "name_request",
    "AdmissionPolicy",
    "AdmitAll",
    "ContentStore",
    "CostAwareAdmission",
    "make_admission",
    "FogNode",
    "NodeDown",
    "FogTopology",
    "FogUnavailable",
    "ChurnDriver",
    "FogExecutor",
    "FogFabric",
    "FabricSupervisor",
    "CircuitBreaker",
    "PeerClient",
    "PeerError",
    "FrameAssembler",
    "pack_frame",
    "unpack_frame",
]

"""repro.fog.frames — length-prefixed binary framing for the peer wire.

The fabric's original wire format shipped every tensor as base64 inside
the NDJSON frame: +33% bytes on the wire and an encode/decode pass on
both ends of every interest.  This module replaces that with a two-part
frame that keeps the NDJSON header (one JSON object per line — cheap to
parse, easy to extend, trivially debuggable) but moves array payloads out
of the JSON entirely:

.. code-block:: text

    {"op":"interest", ..., "a": {"__bin__":0, "dtype":"float64",
     "shape":[4,6]}, "bins":[192]}\\n
    <192 raw little-endian bytes>

* :func:`pack_frame` walks a frame dict, lifts every ``numpy`` array out
  into an ordered binary segment, replaces it with a ``__bin__``
  descriptor (dtype, shape, and optionally the sha256 digest) and appends
  the segments verbatim after the header line.  The header's ``bins``
  list is the receiver's exact read plan: it says how many body bytes
  follow the newline before the next frame starts.
* :class:`FrameAssembler` is the incremental inverse: feed it raw socket
  bytes in any chunking and it yields complete frames with the arrays
  restored **bit-identically** (``np.frombuffer`` over the exact producer
  bytes — no float round-trip, no base64).  Malformed input of any kind
  raises :class:`~repro.serve.protocol.ProtocolError`; nothing else
  escapes.

A frame with no arrays degenerates to a plain NDJSON line (no ``bins``
key), which keeps heartbeats/acks byte-compatible with the PR 9 wire and
lets one assembler parse both framings — the node server accepts legacy
base64 frames and binary frames on the same connection.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

from ..serve.protocol import (
    MAX_ELEMENTS,
    ProtocolError,
    decode_line,
    encode_line,
)

__all__ = ["pack_frame", "unpack_frame", "FrameAssembler", "MAX_FRAME_BYTES"]

#: Hard ceiling for one whole frame (header line + binary body).  Matches
#: the peer transport's historical NDJSON cap so an oversized or hostile
#: frame can never wedge a node's memory.
MAX_FRAME_BYTES = 32 * 1024 * 1024

#: Key marking an array descriptor inside a packed header.
_BIN_KEY = "__bin__"


def _lift(value, bodies: List[bytes]):
    """Replace every ndarray in ``value`` with a ``__bin__`` descriptor."""
    if isinstance(value, np.ndarray):
        # ``tobytes`` always emits C-order bytes, whatever the layout; the
        # descriptor keeps the *original* shape (``ascontiguousarray``
        # would silently promote 0-dim arrays to 1-d).
        descriptor = {
            _BIN_KEY: len(bodies),
            "dtype": str(value.dtype),
            "shape": list(value.shape),
        }
        bodies.append(value.tobytes())
        return descriptor
    if isinstance(value, dict):
        return {str(k): _lift(v, bodies) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_lift(v, bodies) for v in value]
    return value


def pack_frame(frame: dict) -> bytes:
    """One wire frame: NDJSON header line + concatenated raw array bytes.

    Arrays anywhere in ``frame`` (nested dicts/lists included) travel as
    exact bytes after the header; everything else stays JSON.  A frame
    without arrays is a plain NDJSON line, bit-compatible with the
    legacy peer protocol.
    """
    if not isinstance(frame, dict):
        raise ProtocolError("frame must be a dict")
    bodies: List[bytes] = []
    header = _lift(frame, bodies)
    if bodies:
        header["bins"] = [len(b) for b in bodies]
    payload = encode_line(header) + b"".join(bodies)
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame is {len(payload)} bytes (limit {MAX_FRAME_BYTES})",
            code="too_large",
        )
    return payload


def _restore(value, bodies: List[bytes]):
    """Inverse of :func:`_lift`: descriptors become verified arrays."""
    if isinstance(value, dict):
        if _BIN_KEY in value:
            return _decode_descriptor(value, bodies)
        return {k: _restore(v, bodies) for k, v in value.items()}
    if isinstance(value, list):
        return [_restore(v, bodies) for v in value]
    return value


def _decode_descriptor(desc: dict, bodies: List[bytes]) -> np.ndarray:
    try:
        index = int(desc[_BIN_KEY])
        dtype = np.dtype(str(desc["dtype"]))
        shape = tuple(int(n) for n in desc["shape"])
    except (KeyError, TypeError, ValueError) as err:
        raise ProtocolError(f"malformed binary descriptor: {err!r}")
    if dtype.hasobject:
        raise ProtocolError("object dtypes cannot cross the wire")
    if not 0 <= index < len(bodies):
        raise ProtocolError(f"binary descriptor index {index} out of range")
    count = 1
    for n in shape:
        if n < 0:
            raise ProtocolError(f"negative dimension in shape {shape}")
        count *= n
    if count > MAX_ELEMENTS:
        raise ProtocolError(
            f"array has {count} elements (limit {MAX_ELEMENTS})", code="too_large"
        )
    raw = bodies[index]
    if len(raw) != count * dtype.itemsize:
        raise ProtocolError(
            f"binary segment {index} is {len(raw)} bytes, "
            f"expected {count * dtype.itemsize} for {dtype}{shape}"
        )
    return np.frombuffer(raw, dtype=dtype).reshape(shape).copy()


def unpack_frame(header: dict, body: bytes) -> dict:
    """Rebuild a frame from its decoded header and raw body bytes."""
    if not isinstance(header, dict):
        raise ProtocolError("frame header must be a JSON object")
    bins = header.get("bins", [])
    if not isinstance(bins, list):
        raise ProtocolError("'bins' must be a list of segment lengths")
    lengths = []
    for n in bins:
        if not isinstance(n, int) or isinstance(n, bool) or n < 0:
            raise ProtocolError(f"bad binary segment length {n!r}")
        lengths.append(n)
    if sum(lengths) != len(body):
        raise ProtocolError(
            f"frame body is {len(body)} bytes, header promises {sum(lengths)}"
        )
    bodies: List[bytes] = []
    offset = 0
    for n in lengths:
        bodies.append(body[offset : offset + n])
        offset += n
    restored = {
        k: _restore(v, bodies) for k, v in header.items() if k != "bins"
    }
    return restored


class FrameAssembler:
    """Incremental frame parser over an untrusted byte stream.

    Feed it chunks in whatever sizes the socket produced; :meth:`next_frame`
    returns one complete decoded frame (arrays restored) or ``None`` when
    more bytes are needed.  Any malformed input — an unparsable header
    line, an oversized frame, descriptor/segment mismatches — raises
    :class:`~repro.serve.protocol.ProtocolError`; the assembler is then
    poisoned (the stream cannot be resynchronized once a length prefix is
    untrustworthy) and every later call re-raises.
    """

    def __init__(self, max_frame: int = MAX_FRAME_BYTES):
        self.max_frame = int(max_frame)
        self._buf = bytearray()
        #: Parsed header waiting for its binary body, plus the byte count.
        self._header: Optional[dict] = None
        self._body_len = 0
        self._dead: Optional[ProtocolError] = None

    def feed(self, data: bytes) -> None:
        self._buf += data

    def _fail(self, err: ProtocolError) -> ProtocolError:
        self._dead = err
        return err

    def next_frame(self) -> Optional[dict]:
        if self._dead is not None:
            raise self._dead
        if self._header is None:
            newline = self._buf.find(b"\n")
            if newline < 0:
                if len(self._buf) > self.max_frame:
                    raise self._fail(
                        ProtocolError("oversized frame header", code="too_large")
                    )
                return None
            line = bytes(self._buf[:newline])
            del self._buf[: newline + 1]
            try:
                header = decode_line(line)
            except ProtocolError as err:
                raise self._fail(err)
            if not isinstance(header, dict):
                raise self._fail(ProtocolError("frame header must be an object"))
            bins = header.get("bins", [])
            if not isinstance(bins, list) or any(
                not isinstance(n, int) or isinstance(n, bool) or n < 0
                for n in bins
            ):
                raise self._fail(ProtocolError("malformed 'bins' lengths"))
            body_len = sum(bins)
            if len(line) + 1 + body_len > self.max_frame:
                raise self._fail(
                    ProtocolError("oversized frame body", code="too_large")
                )
            self._header = header
            self._body_len = body_len
        if len(self._buf) < self._body_len:
            return None
        body = bytes(self._buf[: self._body_len])
        del self._buf[: self._body_len]
        header, self._header = self._header, None
        try:
            return unpack_frame(header, body)
        except ProtocolError as err:
            raise self._fail(err)

    def frames(self) -> Iterator[dict]:
        """Drain every complete frame currently buffered."""
        while True:
            frame = self.next_frame()
            if frame is None:
                return
            yield frame

    @property
    def pending_bytes(self) -> int:
        return len(self._buf)

"""repro.fog.executor — dispatch the serve front end into a fog topology.

:class:`FogExecutor` is a drop-in for the serve layer's
:class:`~repro.serve.executor.EngineExecutor` contract (``execute(key,
requests) -> list``, ``close``, ``restart``, ``stats``): the TCP front
end's dynamic batcher hands it a coalesced batch, and each request routes
through the :class:`~repro.fog.topology.FogTopology` as a named
computation — cache hits served without re-execution, misses executed at
the owning node, dead owners rerouted around.  Enable it on a server with
``ServeConfig(fog_nodes=N)`` or ``python -m repro.serve --fog-nodes N``.

Results are byte-identical to direct :class:`EngineExecutor` execution
(the fog nodes *are* engine executors, and the content store replays
verified bytes), so the serving layer's coalescing contract survives the
indirection untouched.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..engine.observe import METRICS, Metrics
from ..serve.protocol import ProtocolError, Request
from .topology import FogTopology, FogUnavailable

__all__ = ["FogExecutor"]


class FogExecutor:
    """Serve-executor adapter over a :class:`FogTopology`.

    Parameters:
        topology: An existing fog to serve through, or ``None`` to build
            one from the remaining arguments.
        nodes / replicas / executor_opts / store_policy / store_reverify:
            Forwarded to :class:`FogTopology` when ``topology`` is ``None``.
    """

    def __init__(
        self,
        topology: Optional[FogTopology] = None,
        nodes: int = 4,
        replicas: int = 2,
        metrics: Optional[Metrics] = None,
        executor_opts: Optional[dict] = None,
        store_policy: str = "lru",
        store_reverify: int = 1,
    ):
        self.metrics = metrics if metrics is not None else METRICS
        self.topology = (
            topology
            if topology is not None
            else FogTopology(
                nodes=nodes,
                replicas=replicas,
                metrics=self.metrics,
                executor_opts=executor_opts,
                store_policy=store_policy,
                store_reverify=store_reverify,
            )
        )
        self.executed = 0

    # ------------------------------------------------------------------
    def execute(self, key: Tuple, requests: List[Request]) -> List[object]:
        """Route each request through the fog; one result or exception each.

        Mirrors :meth:`EngineExecutor.execute`'s resolve-don't-drop
        contract: a failing request (deadline, engine error, no alive
        owner) resolves to its exception without poisoning batch mates.
        """
        results: List[object] = []
        for request in requests:
            try:
                results.append(self.topology.submit(request))
            except FogUnavailable as err:
                # Surface as a coded wire error ("unavailable"), not an
                # internal fault: the client may retry once churn settles.
                results.append(ProtocolError(str(err), code="unavailable"))
            except Exception as err:  # noqa: BLE001 — resolve, don't drop
                results.append(err)
        self.executed += len(requests)
        self.metrics.inc("fog.serve_dispatches", len(requests))
        return results

    # ------------------------------------------------------------------
    def close(self) -> None:
        self.topology.close()

    def restart(self) -> None:
        self.topology.restart()

    def stats(self) -> Dict[str, object]:
        return {
            "executed": self.executed,
            "fog": self.topology.stats(),
        }

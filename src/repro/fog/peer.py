"""repro.fog.peer — one fabric peer: the node process and its client.

The cross-process half of the fog lives here.  :func:`node_main` is the
entry point of one spawned **node process**: it binds an ephemeral
localhost socket, reports the port back through a pipe, and serves NDJSON
frames (:mod:`repro.serve.protocol`) over it — ``interest`` (answer from
the content store or execute locally), ``carry`` (on-path cache
repopulation, digest-verified before insertion), ``advertise``,
``heartbeat``, ``stats`` and ``shutdown``.  Inside, the process is just a
:class:`~repro.fog.node.FogNode`: same executor, same content store, same
bytes as the in-process topology — which is exactly why fabric results
replay byte-identical against the PR 7 fog golden vectors.

On the parent side, :class:`PeerClient` is the blocking socket client the
fabric routes through: a persistent data connection (closed and re-dialed
after any failure — a timed-out stream can have a response in flight, so
it can never be reused), one-shot connections for heartbeats and hedged
interests (they must not queue behind a long execution), and hard
connect/request timeouts so a dead or stalled peer costs bounded time.

:class:`CircuitBreaker` wraps each peer with the classic three-state
machine — **closed** (normal), **open** (recent failures: fail fast, stop
queueing interests on a dead peer), **half-open** (cooldown elapsed: admit
exactly one probe; its outcome closes or re-opens the circuit).
"""

from __future__ import annotations

import os
import socket
import threading
import time
from typing import Dict, Optional, Tuple

import numpy as np

from ..engine.observe import METRICS, Metrics
from ..engine.registry import array_digest
from ..serve.protocol import (
    ProtocolError,
    decode_line,
    encode_line,
    request_from_wire,
)

__all__ = ["CircuitBreaker", "PeerClient", "PeerError", "node_main"]

#: Longest NDJSON frame a peer will buffer (matches the serve front door).
_MAX_FRAME = 32 * 1024 * 1024


class PeerError(Exception):
    """Talking to a peer failed (connect, timeout, protocol, hangup).

    Every failure mode of the socket path collapses to this one type so
    the fabric's retry/breaker logic has a single thing to catch; the
    original cause rides along in ``args``.
    """


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------
class CircuitBreaker:
    """Per-peer closed → open → half-open failure circuit.

    Parameters:
        failure_threshold: Consecutive failures that trip the circuit.
        reset_after_s: Cooldown before an open circuit admits one probe.
        clock: Injectable monotonic clock (tests pin time).
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_after_s: float = 0.5,
        clock=time.monotonic,
        metrics: Optional[Metrics] = None,
        name: str = "",
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = int(failure_threshold)
        self.reset_after_s = float(reset_after_s)
        self.clock = clock
        self.metrics = metrics if metrics is not None else METRICS
        self.name = name
        self.state = self.CLOSED
        self.failures = 0
        self.opened_at = 0.0
        self.opens = 0
        self.probes = 0
        self.closes = 0
        self._lock = threading.Lock()

    def allow(self) -> bool:
        """May a request go to this peer right now?

        In half-open state only the first caller after cooldown gets
        ``True`` (the probe); everyone else fails fast until the probe's
        outcome is recorded.
        """
        with self._lock:
            if self.state == self.CLOSED:
                return True
            if self.state == self.OPEN:
                if self.clock() - self.opened_at >= self.reset_after_s:
                    self.state = self.HALF_OPEN
                    self.probes += 1
                    self.metrics.inc("fabric.breaker.probes")
                    return True
                return False
            return False  # HALF_OPEN: probe already in flight

    def record_success(self) -> None:
        with self._lock:
            if self.state != self.CLOSED:
                self.closes += 1
                self.metrics.inc("fabric.breaker.closes")
            self.state = self.CLOSED
            self.failures = 0

    def record_failure(self) -> None:
        with self._lock:
            self.failures += 1
            tripped = (
                self.state == self.HALF_OPEN
                or self.failures >= self.failure_threshold
            )
            if tripped and self.state != self.OPEN:
                self.state = self.OPEN
                self.opens += 1
                self.metrics.inc("fabric.breaker.opens")
            if tripped:
                self.opened_at = self.clock()

    def force_open(self) -> None:
        """Trip the circuit from outside (heartbeat detector, supervisor)."""
        with self._lock:
            if self.state != self.OPEN:
                self.opens += 1
                self.metrics.inc("fabric.breaker.opens")
            self.state = self.OPEN
            self.failures = max(self.failures, self.failure_threshold)
            self.opened_at = self.clock()

    def reset(self) -> None:
        """Close the circuit (a freshly restarted peer starts trusted)."""
        with self._lock:
            self.state = self.CLOSED
            self.failures = 0

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "state": self.state,
                "failures": self.failures,
                "opens": self.opens,
                "probes": self.probes,
                "closes": self.closes,
            }

    def __repr__(self):
        return f"CircuitBreaker({self.name!r}, {self.state}, failures={self.failures})"


# ----------------------------------------------------------------------
# Parent-side client
# ----------------------------------------------------------------------
class PeerClient:
    """Blocking NDJSON client for one fabric node process."""

    def __init__(
        self,
        name: str,
        address: Tuple[str, int],
        connect_timeout_s: float = 2.0,
        request_timeout_s: float = 30.0,
        metrics: Optional[Metrics] = None,
    ):
        self.name = str(name)
        self.address = (str(address[0]), int(address[1]))
        self.connect_timeout_s = float(connect_timeout_s)
        self.request_timeout_s = float(request_timeout_s)
        self.metrics = metrics if metrics is not None else METRICS
        self._lock = threading.Lock()
        self._sock: Optional[socket.socket] = None
        self._buf = b""

    # ------------------------------------------------------------------
    def _connect(self) -> socket.socket:
        try:
            sock = socket.create_connection(
                self.address, timeout=self.connect_timeout_s
            )
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            return sock
        except OSError as err:
            raise PeerError(f"connect to {self.name} {self.address}: {err}")

    def _read_frame(self, sock: socket.socket, oneshot: bool) -> dict:
        buf = b"" if oneshot else self._buf
        while b"\n" not in buf:
            if len(buf) > _MAX_FRAME:
                raise PeerError(f"oversized frame from {self.name}")
            try:
                chunk = sock.recv(1 << 16)
            except OSError as err:
                raise PeerError(f"recv from {self.name}: {err}")
            if not chunk:
                raise PeerError(f"peer {self.name} closed the connection")
            buf += chunk
        line, _, rest = buf.partition(b"\n")
        if not oneshot:
            self._buf = rest
        try:
            return decode_line(line)
        except ProtocolError as err:
            raise PeerError(f"bad frame from {self.name}: {err}")

    def call(
        self,
        frame: dict,
        timeout_s: Optional[float] = None,
        oneshot: bool = False,
    ) -> dict:
        """Send one frame, await one response frame; raises :class:`PeerError`.

        ``oneshot=True`` dials a dedicated connection for this exchange —
        what heartbeats and hedged interests use so they never queue
        behind (or desynchronize) the persistent data stream.  On any
        failure of the persistent stream the socket is discarded: a reply
        may still be in flight on it, and reading that reply later would
        correlate it with the wrong request.
        """
        timeout = self.request_timeout_s if timeout_s is None else float(timeout_s)
        payload = encode_line(frame)
        if oneshot:
            sock = self._connect()
            try:
                sock.settimeout(timeout)
                sock.sendall(payload)
                return self._read_frame(sock, oneshot=True)
            except OSError as err:
                raise PeerError(f"oneshot call to {self.name}: {err}")
            finally:
                sock.close()
        with self._lock:
            try:
                if self._sock is None:
                    self._sock = self._connect()
                    self._buf = b""
                self._sock.settimeout(timeout)
                self._sock.sendall(payload)
                return self._read_frame(self._sock, oneshot=False)
            except (OSError, PeerError) as err:
                self._drop_locked()
                if isinstance(err, PeerError):
                    raise
                raise PeerError(f"call to {self.name}: {err}")

    def heartbeat(self, seq: int, timeout_s: float = 1.0) -> dict:
        """One liveness probe on a throwaway connection."""
        resp = self.call(
            {"op": "heartbeat", "seq": int(seq)}, timeout_s=timeout_s, oneshot=True
        )
        if not resp.get("ok") or resp.get("seq") != int(seq):
            raise PeerError(f"bad heartbeat ack from {self.name}: {resp}")
        return resp

    def _drop_locked(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
            self._buf = b""

    def close(self) -> None:
        with self._lock:
            self._drop_locked()

    def __repr__(self):
        return f"PeerClient({self.name!r}, {self.address[0]}:{self.address[1]})"


# ----------------------------------------------------------------------
# Node-process side
# ----------------------------------------------------------------------
def _tuple_key(parts) -> tuple:
    """JSON round-trips tuples as lists; batch keys must come back tuples."""
    return tuple(parts)


class _NodeServer:
    """The frame handler running inside one fabric node process."""

    def __init__(self, node):
        self.node = node
        # Data-plane ops mutate the content store and executor caches;
        # one lock serializes them while heartbeats answer concurrently.
        self._data_lock = threading.Lock()

    # ------------------------------------------------------------------
    def handle(self, frame: dict) -> dict:
        op = frame.get("op")
        if op == "interest":
            return self._interest(frame)
        if op == "carry":
            return self._carry(frame)
        if op == "advertise":
            with self._data_lock:
                self.node.advertise(_tuple_key(frame.get("batch_key", [])))
            return {"ok": True}
        if op == "heartbeat":
            return {
                "ok": True,
                "seq": frame.get("seq"),
                "node": self.node.name,
                "pid": os.getpid(),
                "executions": self.node.executions,
                "store_entries": len(self.node.store),
            }
        if op == "stats":
            with self._data_lock:
                return {"ok": True, "stats": self.node.stats()}
        if op == "shutdown":
            return {"ok": True, "bye": True}
        return {"ok": False, "error": "bad_request", "message": f"unknown op {op!r}"}

    def _interest(self, frame: dict) -> dict:
        budget_ms = frame.get("budget_ms")
        if budget_ms is not None and float(budget_ms) <= 0.0:
            # The forwarded deadline budget is spent: refuse, never work
            # past a deadline another hop already consumed.
            return {"ok": False, "error": "deadline", "message": "budget exhausted"}
        try:
            request = request_from_wire(frame.get("request"))
        except ProtocolError as err:
            return {"ok": False, "error": err.code, "message": str(err)}
        from .names import name_request  # local import: avoid cycle at module load

        name = name_request(request)
        with self._data_lock:
            cached = self.node.lookup(name)
            if cached is not None:
                return self._result(cached, source="cache")
            if not self.node.serves(request.batch_key()):
                return {
                    "ok": False,
                    "error": "cant_serve",
                    "message": f"{self.node.name} does not own {request.batch_key()}",
                }
            try:
                result = self.node.execute(request)
            except Exception as err:  # noqa: BLE001 — resolve over the wire
                return {
                    "ok": False,
                    "error": "exec_failed",
                    "message": f"{type(err).__name__}: {err}",
                }
        return self._result(result, source="exec")

    def _result(self, result: np.ndarray, source: str) -> dict:
        from ..serve.protocol import encode_array

        return {
            "ok": True,
            "source": source,
            "result": encode_array(result),
            "digest": array_digest(result),
        }

    def _carry(self, frame: dict) -> dict:
        from ..serve.protocol import decode_array

        try:
            result = decode_array(frame.get("result"))
        except ProtocolError as err:
            return {"ok": False, "error": err.code, "message": str(err)}
        # Integrity re-verification at the door: the bytes must still hash
        # to the digest pinned when the result was produced — a corrupted
        # or tampered carry is refused, not cached (and counted, exactly
        # like a store read that fails its pinned digest).
        if array_digest(result) != frame.get("digest"):
            self.node.store.integrity_failures += 1
            self.node.metrics.inc(f"fog.node.{self.node.name}.carry_rejected")
            return {"ok": True, "accepted": False}
        from .names import ComputationName

        try:
            name = ComputationName.parse(str(frame.get("name")))
        except ValueError as err:
            return {"ok": False, "error": "bad_request", "message": str(err)}
        with self._data_lock:
            self.node.carry(name, result)
        return {"ok": True, "accepted": True}


def _serve_connection(conn: socket.socket, server: _NodeServer) -> None:
    buf = b""
    try:
        while True:
            while b"\n" not in buf:
                if len(buf) > _MAX_FRAME:
                    return
                chunk = conn.recv(1 << 16)
                if not chunk:
                    return
                buf += chunk
            line, _, buf = buf.partition(b"\n")
            try:
                frame = decode_line(line)
            except ProtocolError as err:
                conn.sendall(
                    encode_line({"ok": False, "error": "bad_request", "message": str(err)})
                )
                continue
            response = server.handle(frame)
            conn.sendall(encode_line(response))
            if response.get("bye"):
                os._exit(0)
    except OSError:
        pass  # client went away: this connection is done, the node is not
    finally:
        try:
            conn.close()
        except OSError:
            pass


def node_main(name: str, port_conn, opts: Optional[dict] = None) -> None:
    """Entry point of one spawned fabric node process.

    Builds a :class:`~repro.fog.node.FogNode` (executor + content store),
    binds an ephemeral localhost socket, reports the bound port through
    ``port_conn`` (a one-shot pipe to the supervisor) and serves frames
    until killed or told to shut down.  One thread per connection: the
    supervisor's heartbeats land on their own connections and are answered
    even while an execution occupies the data plane.
    """
    from ..engine.observe import Metrics as _Metrics
    from ..serve.executor import EngineExecutor
    from .node import FogNode
    from .store import ContentStore

    opts = dict(opts or {})
    executor_opts = dict(opts.get("executor_opts") or {})
    executor_opts.setdefault("metrics", _Metrics())
    node = FogNode(
        name,
        capabilities=frozenset(_tuple_key(k) for k in opts.get("capabilities", [])),
        executor=EngineExecutor(**executor_opts),
        store=ContentStore(capacity_bytes=int(opts.get("capacity_bytes", 16 << 20))),
        metrics=executor_opts["metrics"],
    )
    server = _NodeServer(node)
    listener = socket.create_server(("127.0.0.1", 0))
    listener.settimeout(1.0)
    port_conn.send(listener.getsockname()[1])
    port_conn.close()
    threads = []
    try:
        while True:
            try:
                conn, _ = listener.accept()
            except socket.timeout:
                threads = [t for t in threads if t.is_alive()]
                continue
            t = threading.Thread(
                target=_serve_connection, args=(conn, server), daemon=True
            )
            t.start()
            threads.append(t)
    finally:
        listener.close()

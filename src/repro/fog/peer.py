"""repro.fog.peer — one fabric peer: the node process and its client.

The cross-process half of the fog lives here.  :func:`node_main` is the
entry point of one spawned **node process**: it binds an ephemeral
localhost socket, reports the port back through a pipe, and serves frames
(:mod:`repro.fog.frames` binary framing, legacy NDJSON accepted on the
same connections) — ``interest`` (answer from the content store or execute
locally), ``carry`` (on-path cache repopulation, digest-verified before
insertion), ``advertise``, ``heartbeat``, ``stats`` and ``shutdown``.
Inside, the process is just a :class:`~repro.fog.node.FogNode`: same
executor, same content store, same bytes as the in-process topology —
which is exactly why fabric results replay byte-identical against the
PR 7 fog golden vectors.

On the parent side, :class:`PeerClient` is the **pipelined** socket client
the fabric routes through.  Every frame carries a client-assigned request
id (``rid``); a writer lock serializes sends on the persistent data
connection while a demux thread reads responses and completes the matching
per-request future — so N in-flight interests share one connection at
pipeline depth N instead of paying N serial round trips.  Because
responses are rid-correlated, a timed-out request simply abandons its id
(the late answer is discarded and counted) **without** tearing down the
stream; only socket-level failures drop the connection, failing every
in-flight future at once.  Heartbeats ride a dedicated long-lived probe
connection (re-dialed on failure) so liveness probes pay the connect cost
once, not once per probe, and never queue behind a long execution; hedged
interests still use one-shot connections so an abandoned loser cannot
desynchronize anything.

On the node side a small worker pool serves data-plane frames
concurrently — control frames (heartbeat/stats) are answered inline by the
connection reader so a busy pool can never starve the failure detector —
with per-capability execution locks so duplicate in-flight interests for
one name collapse into a single execution.

:class:`CircuitBreaker` wraps each peer with the classic three-state
machine — **closed** (normal), **open** (recent failures: fail fast, stop
queueing interests on a dead peer), **half-open** (cooldown elapsed: admit
exactly one probe; its outcome closes or re-opens the circuit).
"""

from __future__ import annotations

import os
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional, Tuple

import numpy as np

from ..engine.observe import METRICS, Metrics
from ..engine.registry import array_digest
from ..serve.protocol import ProtocolError, request_from_wire
from .frames import FrameAssembler, pack_frame

__all__ = ["CircuitBreaker", "PeerClient", "PeerError", "node_main"]

#: Longest frame a peer will buffer (header + binary body).
_MAX_FRAME = 32 * 1024 * 1024


class PeerError(Exception):
    """Talking to a peer failed (connect, timeout, protocol, hangup).

    Every failure mode of the socket path collapses to this one type so
    the fabric's retry/breaker logic has a single thing to catch; the
    original cause rides along in ``args``.
    """


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------
class CircuitBreaker:
    """Per-peer closed → open → half-open failure circuit.

    Parameters:
        failure_threshold: Consecutive failures that trip the circuit.
        reset_after_s: Cooldown before an open circuit admits one probe.
        clock: Injectable monotonic clock (tests pin time).
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_after_s: float = 0.5,
        clock=time.monotonic,
        metrics: Optional[Metrics] = None,
        name: str = "",
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = int(failure_threshold)
        self.reset_after_s = float(reset_after_s)
        self.clock = clock
        self.metrics = metrics if metrics is not None else METRICS
        self.name = name
        self.state = self.CLOSED
        self.failures = 0
        self.opened_at = 0.0
        self.opens = 0
        self.probes = 0
        self.closes = 0
        self._lock = threading.Lock()

    def allow(self) -> bool:
        """May a request go to this peer right now?

        In half-open state only the first caller after cooldown gets
        ``True`` (the probe); everyone else fails fast until the probe's
        outcome is recorded.
        """
        with self._lock:
            if self.state == self.CLOSED:
                return True
            if self.state == self.OPEN:
                if self.clock() - self.opened_at >= self.reset_after_s:
                    self.state = self.HALF_OPEN
                    self.probes += 1
                    self.metrics.inc("fabric.breaker.probes")
                    return True
                return False
            return False  # HALF_OPEN: probe already in flight

    def record_success(self) -> None:
        with self._lock:
            if self.state != self.CLOSED:
                self.closes += 1
                self.metrics.inc("fabric.breaker.closes")
            self.state = self.CLOSED
            self.failures = 0

    def record_failure(self) -> None:
        with self._lock:
            self.failures += 1
            tripped = (
                self.state == self.HALF_OPEN
                or self.failures >= self.failure_threshold
            )
            if tripped and self.state != self.OPEN:
                self.state = self.OPEN
                self.opens += 1
                self.metrics.inc("fabric.breaker.opens")
            if tripped:
                self.opened_at = self.clock()

    def force_open(self) -> None:
        """Trip the circuit from outside (heartbeat detector, supervisor)."""
        with self._lock:
            if self.state != self.OPEN:
                self.opens += 1
                self.metrics.inc("fabric.breaker.opens")
            self.state = self.OPEN
            self.failures = max(self.failures, self.failure_threshold)
            self.opened_at = self.clock()

    def reset(self) -> None:
        """Close the circuit (a freshly restarted peer starts trusted)."""
        with self._lock:
            self.state = self.CLOSED
            self.failures = 0

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "state": self.state,
                "failures": self.failures,
                "opens": self.opens,
                "probes": self.probes,
                "closes": self.closes,
            }

    def __repr__(self):
        return f"CircuitBreaker({self.name!r}, {self.state}, failures={self.failures})"


# ----------------------------------------------------------------------
# Parent-side client
# ----------------------------------------------------------------------
class _Waiter:
    """One in-flight request's completion slot."""

    __slots__ = ("event", "response", "error")

    def __init__(self):
        self.event = threading.Event()
        self.response: Optional[dict] = None
        self.error: Optional[PeerError] = None


class PeerClient:
    """Pipelined binary-framed client for one fabric node process.

    Concurrent :meth:`call`\\ s multiplex over one persistent connection:
    each frame carries a ``rid``, a writer lock serializes the sends, and
    a reader thread demultiplexes responses to per-request waiters.  A
    request that times out abandons its rid without dropping the stream
    (responses are correlated, so nothing can desynchronize); socket
    failures fail every pending request at once and the next call
    re-dials.
    """

    def __init__(
        self,
        name: str,
        address: Tuple[str, int],
        connect_timeout_s: float = 2.0,
        request_timeout_s: float = 30.0,
        metrics: Optional[Metrics] = None,
    ):
        self.name = str(name)
        self.address = (str(address[0]), int(address[1]))
        self.connect_timeout_s = float(connect_timeout_s)
        self.request_timeout_s = float(request_timeout_s)
        self.metrics = metrics if metrics is not None else METRICS
        self._io_lock = threading.Lock()
        self._wlock = threading.Lock()
        self._sock: Optional[socket.socket] = None
        self._generation = 0
        self._cur_gen: Optional[int] = None
        self._rid = 0
        self._pending: Dict[int, _Waiter] = {}
        self._closed = False
        # Dedicated long-lived heartbeat probe connection (re-dialed on
        # failure): probes stop paying connect cost and port churn.
        self._probe_lock = threading.Lock()
        self._probe_sock: Optional[socket.socket] = None
        self._probe_asm: Optional[FrameAssembler] = None
        self.probe_dials = 0

    # ------------------------------------------------------------------
    def _connect(self) -> socket.socket:
        try:
            sock = socket.create_connection(
                self.address, timeout=self.connect_timeout_s
            )
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            return sock
        except OSError as err:
            raise PeerError(f"connect to {self.name} {self.address}: {err}")

    def _ensure_connected_locked(self) -> Tuple[socket.socket, int]:
        if self._closed:
            raise PeerError(f"client for {self.name} is closed")
        if self._sock is None:
            sock = self._connect()
            # The send path must not block forever on a wedged peer; the
            # reader treats this timeout as idle, not failure.
            sock.settimeout(self.request_timeout_s)
            self._generation += 1
            self._sock = sock
            self._cur_gen = self._generation
            reader = threading.Thread(
                target=self._reader_loop,
                args=(sock, self._generation),
                name=f"peer-rx-{self.name}",
                daemon=True,
            )
            reader.start()
        return self._sock, self._cur_gen

    def _teardown_locked(self) -> list:
        """Drop the data connection; returns the orphaned waiters."""
        sock, self._sock = self._sock, None
        self._cur_gen = None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass
        waiters = list(self._pending.values())
        self._pending.clear()
        return waiters

    def _fail_connection(self, generation: int, err: PeerError) -> None:
        with self._io_lock:
            if self._cur_gen != generation:
                return  # stale reader: this connection was already replaced
            waiters = self._teardown_locked()
        for waiter in waiters:
            waiter.error = err
            waiter.event.set()

    # ------------------------------------------------------------------
    def _reader_loop(self, sock: socket.socket, generation: int) -> None:
        """Demux thread: read frames, complete the matching waiters."""
        assembler = FrameAssembler(max_frame=_MAX_FRAME)
        while True:
            try:
                frame = assembler.next_frame()
            except ProtocolError as err:
                self._fail_connection(
                    generation, PeerError(f"bad frame from {self.name}: {err}")
                )
                return
            if frame is not None:
                self._complete(frame)
                continue
            try:
                chunk = sock.recv(1 << 16)
            except socket.timeout:
                continue  # idle stream; per-call timeouts police stalls
            except OSError as err:
                self._fail_connection(
                    generation, PeerError(f"recv from {self.name}: {err}")
                )
                return
            if not chunk:
                self._fail_connection(
                    generation, PeerError(f"peer {self.name} closed the connection")
                )
                return
            assembler.feed(chunk)

    def _complete(self, frame: dict) -> None:
        # The rid stays in the delivered response: callers can observe the
        # correlation the demux acted on.
        rid = frame.get("rid")
        with self._io_lock:
            waiter = self._pending.pop(rid, None) if rid is not None else None
        if waiter is None:
            # A response whose request already timed out (or a frame with
            # no rid at all): discarded, counted, stream stays healthy.
            self.metrics.inc("fabric.peer.orphan_responses")
            return
        waiter.response = frame
        waiter.event.set()

    # ------------------------------------------------------------------
    def call(
        self,
        frame: dict,
        timeout_s: Optional[float] = None,
        oneshot: bool = False,
    ) -> dict:
        """Send one frame, await its response frame; raises :class:`PeerError`.

        The persistent path pipelines: concurrent callers interleave on
        one connection and are completed by rid.  ``oneshot=True`` dials a
        dedicated connection for this exchange — what hedged interests use
        so an abandoned loser can never leave a stale response in the
        shared stream.
        """
        timeout = self.request_timeout_s if timeout_s is None else float(timeout_s)
        if oneshot:
            return self._call_oneshot(frame, timeout)
        with self._io_lock:
            sock, generation = self._ensure_connected_locked()
            self._rid += 1
            rid = self._rid
        try:
            payload = pack_frame({**frame, "rid": rid})
        except ProtocolError as err:
            raise PeerError(f"unsendable frame for {self.name}: {err}")
        waiter = _Waiter()
        with self._io_lock:
            if self._cur_gen != generation:
                raise PeerError(f"connection to {self.name} failed while queueing")
            self._pending[rid] = waiter
        try:
            with self._wlock:
                sock.sendall(payload)
        except OSError as err:
            # A partial send poisons the stream: fail the connection (and
            # with it every pending waiter, this one included).
            self._fail_connection(
                generation, PeerError(f"send to {self.name}: {err}")
            )
            raise PeerError(f"send to {self.name}: {err}")
        if not waiter.event.wait(timeout):
            with self._io_lock:
                self._pending.pop(rid, None)
            self.metrics.inc("fabric.peer.call_timeouts")
            # rid-correlation means the stream survives: only this
            # request is abandoned, not the pipeline.
            raise PeerError(
                f"request {rid} to {self.name} timed out after {timeout:.3f}s"
            )
        if waiter.error is not None:
            raise waiter.error
        return waiter.response

    def _call_oneshot(self, frame: dict, timeout: float) -> dict:
        sock = self._connect()
        try:
            sock.settimeout(timeout)
            try:
                sock.sendall(pack_frame(frame))
            except ProtocolError as err:
                raise PeerError(f"unsendable frame for {self.name}: {err}")
            return self._read_one(sock, f"oneshot call to {self.name}")
        except OSError as err:
            raise PeerError(f"oneshot call to {self.name}: {err}")
        finally:
            try:
                sock.close()
            except OSError:
                pass

    def _read_one(
        self,
        sock: socket.socket,
        what: str,
        assembler: Optional[FrameAssembler] = None,
    ) -> dict:
        """Read exactly one frame off a serial (non-pipelined) socket."""
        assembler = assembler if assembler is not None else FrameAssembler(_MAX_FRAME)
        while True:
            try:
                frame = assembler.next_frame()
            except ProtocolError as err:
                raise PeerError(f"bad frame from {self.name}: {err}")
            if frame is not None:
                frame.pop("rid", None)
                return frame
            chunk = sock.recv(1 << 16)
            if not chunk:
                raise PeerError(f"{what}: peer closed the connection")
            assembler.feed(chunk)

    # ------------------------------------------------------------------
    def heartbeat(self, seq: int, timeout_s: float = 1.0) -> dict:
        """One liveness probe on the dedicated long-lived probe connection.

        The probe connection is dialed once and reused (counted in
        ``probe_dials``); any failure — connect, timeout, a desynchronized
        ack — drops it so the next probe re-dials fresh.  Probes are
        strictly serial request/response, so no rid bookkeeping is needed.
        """
        frame = {"op": "heartbeat", "seq": int(seq)}
        with self._probe_lock:
            try:
                if self._probe_sock is None:
                    self._probe_sock = self._connect()
                    self._probe_asm = FrameAssembler(_MAX_FRAME)
                    self.probe_dials += 1
                    self.metrics.inc("fabric.peer.probe_dials")
                sock = self._probe_sock
                sock.settimeout(timeout_s)
                sock.sendall(pack_frame(frame))
                resp = self._read_one(
                    sock, f"heartbeat to {self.name}", self._probe_asm
                )
                if not resp.get("ok") or resp.get("seq") != int(seq):
                    # A stale or mismatched ack means the probe stream is
                    # desynchronized; only a fresh dial restores trust.
                    raise PeerError(f"bad heartbeat ack from {self.name}: {resp}")
            except PeerError:
                self._drop_probe_locked()
                raise
            except OSError as err:
                self._drop_probe_locked()
                raise PeerError(f"heartbeat to {self.name}: {err}")
        return resp

    def _drop_probe_locked(self) -> None:
        if self._probe_sock is not None:
            try:
                self._probe_sock.close()
            except OSError:
                pass
        self._probe_sock = None
        self._probe_asm = None

    # ------------------------------------------------------------------
    def pending(self) -> int:
        """In-flight request count (pipeline depth right now)."""
        with self._io_lock:
            return len(self._pending)

    def close(self) -> None:
        with self._io_lock:
            self._closed = True
            waiters = self._teardown_locked()
        for waiter in waiters:
            waiter.error = PeerError(f"client for {self.name} closed")
            waiter.event.set()
        with self._probe_lock:
            self._drop_probe_locked()

    def __repr__(self):
        return f"PeerClient({self.name!r}, {self.address[0]}:{self.address[1]})"


# ----------------------------------------------------------------------
# Node-process side
# ----------------------------------------------------------------------
def _tuple_key(parts) -> tuple:
    """JSON round-trips tuples as lists; batch keys must come back tuples."""
    return tuple(parts)


class _NodeServer:
    """The frame handler running inside one fabric node process.

    The content store is internally locked, so the only extra
    coordination needed for concurrent frames is a per-capability
    execution lock: duplicate in-flight interests for one name serialize
    on it and the second finds the first's result in the store
    (node-side singleflight) instead of re-executing.
    """

    def __init__(self, node):
        self.node = node
        self._cap_lock = threading.Lock()
        self._exec_locks: Dict[tuple, threading.Lock] = {}
        self._exec_locks_guard = threading.Lock()

    def _exec_lock(self, key: tuple) -> threading.Lock:
        with self._exec_locks_guard:
            lock = self._exec_locks.get(key)
            if lock is None:
                lock = self._exec_locks[key] = threading.Lock()
            return lock

    # ------------------------------------------------------------------
    def handle(self, frame: dict) -> dict:
        op = frame.get("op")
        if op == "interest":
            return self._interest(frame)
        if op == "carry":
            return self._carry(frame)
        if op == "advertise":
            with self._cap_lock:
                self.node.advertise(_tuple_key(frame.get("batch_key", [])))
            return {"ok": True}
        if op == "heartbeat":
            return {
                "ok": True,
                "seq": frame.get("seq"),
                "node": self.node.name,
                "pid": os.getpid(),
                "executions": self.node.executions,
                "store_entries": len(self.node.store),
            }
        if op == "stats":
            return {"ok": True, "stats": self.node.stats()}
        if op == "shutdown":
            return {"ok": True, "bye": True}
        return {"ok": False, "error": "bad_request", "message": f"unknown op {op!r}"}

    def _interest(self, frame: dict) -> dict:
        budget_ms = frame.get("budget_ms")
        if budget_ms is not None and float(budget_ms) <= 0.0:
            # The forwarded deadline budget is spent: refuse, never work
            # past a deadline another hop already consumed.
            return {"ok": False, "error": "deadline", "message": "budget exhausted"}
        try:
            request = request_from_wire(frame.get("request"))
        except ProtocolError as err:
            return {"ok": False, "error": err.code, "message": str(err)}
        from .names import name_request  # local import: avoid cycle at module load

        name = name_request(request)
        cached = self.node.lookup(name)
        if cached is not None:
            return self._result(name, cached, source="cache")
        key = request.batch_key()
        if not self.node.serves(key):
            return {
                "ok": False,
                "error": "cant_serve",
                "message": f"{self.node.name} does not own {key}",
            }
        with self._exec_lock(key):
            # Re-check under the lock: a duplicate interest that queued
            # behind the first execution collapses into its cached result.
            cached = self.node.lookup(name)
            if cached is not None:
                return self._result(name, cached, source="cache")
            try:
                result = self.node.execute(request)
            except Exception as err:  # noqa: BLE001 — resolve over the wire
                return {
                    "ok": False,
                    "error": "exec_failed",
                    "message": f"{type(err).__name__}: {err}",
                }
        return self._result(name, result, source="exec")

    def _result(self, name, result: np.ndarray, source: str) -> dict:
        resp = {
            "ok": True,
            "source": source,
            "result": np.asarray(result),
            "digest": array_digest(result),
        }
        cost = self.node.store.cost(name.uri())
        if cost is not None:
            resp["cost_ms"] = round(float(cost), 4)
        return resp

    def _carry(self, frame: dict) -> dict:
        from ..serve.protocol import decode_array

        try:
            result = decode_array(frame.get("result"))
        except ProtocolError as err:
            return {"ok": False, "error": err.code, "message": str(err)}
        # Integrity re-verification at the door: the bytes must still hash
        # to the digest pinned when the result was produced — a corrupted
        # or tampered carry is refused, not cached (and counted, exactly
        # like a store read that fails its pinned digest).
        if array_digest(result) != frame.get("digest"):
            self.node.store.integrity_failures += 1
            self.node.metrics.inc(f"fog.node.{self.node.name}.carry_rejected")
            return {"ok": True, "accepted": False}
        from .names import ComputationName

        try:
            name = ComputationName.parse(str(frame.get("name")))
        except ValueError as err:
            return {"ok": False, "error": "bad_request", "message": str(err)}
        cost = frame.get("cost")
        self.node.carry(
            name, result, cost_ms=None if cost is None else float(cost)
        )
        return {"ok": True, "accepted": True}


#: Ops cheap enough (and important enough) to answer inline in the
#: connection reader: a saturated worker pool must never starve the
#: failure detector into a false suspect verdict.
_CONTROL_OPS = frozenset({"heartbeat", "stats", "shutdown"})


def _serve_connection(
    conn: socket.socket, server: _NodeServer, pool: ThreadPoolExecutor
) -> None:
    assembler = FrameAssembler(_MAX_FRAME)
    wlock = threading.Lock()

    def reply(response: dict, rid) -> None:
        if rid is not None:
            response = {**response, "rid": rid}
        try:
            with wlock:
                conn.sendall(pack_frame(response))
        except OSError:
            pass  # client went away mid-reply: nothing left to tell it

    def work(frame: dict, rid) -> None:
        reply(server.handle(frame), rid)

    try:
        while True:
            try:
                frame = assembler.next_frame()
            except ProtocolError as err:
                reply(
                    {"ok": False, "error": err.code, "message": str(err)},
                    None,
                )
                return  # a broken length prefix cannot be resynchronized
            if frame is None:
                chunk = conn.recv(1 << 16)
                if not chunk:
                    return
                assembler.feed(chunk)
                continue
            rid = frame.get("rid")
            if frame.get("op") in _CONTROL_OPS:
                response = server.handle(frame)
                reply(response, rid)
                if response.get("bye"):
                    os._exit(0)
            else:
                pool.submit(work, frame, rid)
    except OSError:
        pass  # client went away: this connection is done, the node is not
    finally:
        try:
            conn.close()
        except OSError:
            pass


def node_main(name: str, port_conn, opts: Optional[dict] = None) -> None:
    """Entry point of one spawned fabric node process.

    Builds a :class:`~repro.fog.node.FogNode` (executor + content store),
    binds an ephemeral localhost socket, reports the bound port through
    ``port_conn`` (a one-shot pipe to the supervisor) and serves frames
    until killed or told to shut down.  One reader thread per connection
    plus a small shared worker pool (``opts["workers"]``, default 4) that
    executes data-plane frames concurrently: a pipelining client gets its
    decode/execute/encode work overlapped instead of strictly serialized,
    and the supervisor's heartbeats are answered inline even while
    executions occupy every worker.
    """
    from ..engine.observe import Metrics as _Metrics
    from ..serve.executor import EngineExecutor
    from .node import FogNode
    from .store import ContentStore, make_admission

    opts = dict(opts or {})
    executor_opts = dict(opts.get("executor_opts") or {})
    executor_opts.setdefault("metrics", _Metrics())
    node = FogNode(
        name,
        capabilities=frozenset(_tuple_key(k) for k in opts.get("capabilities", [])),
        executor=EngineExecutor(**executor_opts),
        store=ContentStore(
            capacity_bytes=int(opts.get("capacity_bytes", 16 << 20)),
            admission=make_admission(opts.get("store_policy", "lru")),
            reverify_every=int(opts.get("store_reverify", 1)),
        ),
        metrics=executor_opts["metrics"],
    )
    server = _NodeServer(node)
    pool = ThreadPoolExecutor(
        max_workers=max(1, int(opts.get("workers", 4))),
        thread_name_prefix=f"fog-{name}-worker",
    )
    listener = socket.create_server(("127.0.0.1", 0))
    listener.settimeout(1.0)
    port_conn.send(listener.getsockname()[1])
    port_conn.close()
    threads = []
    try:
        while True:
            try:
                conn, _ = listener.accept()
            except socket.timeout:
                threads = [t for t in threads if t.is_alive()]
                continue
            t = threading.Thread(
                target=_serve_connection, args=(conn, server, pool), daemon=True
            )
            t.start()
            threads.append(t)
    finally:
        listener.close()

"""repro.fog.supervisor — spawn, watch, and restart fabric node processes.

The :class:`FabricSupervisor` owns the operating-system half of the
fabric: it spawns each :func:`repro.fog.peer.node_main` node as a real
``multiprocessing`` (spawn-context) process, collects the ephemeral port
each node binds, and runs a monitor thread that turns *liveness* from an
attribute into a measurement:

* **Heartbeats** — every ``heartbeat_ms`` the monitor probes each node on
  a throwaway connection.  ``miss_budget`` consecutive misses mark the
  node *suspect*: routing stops sending it interests, but the process is
  left alone (a SIGSTOP-stalled node resumes and is welcomed back the
  moment it answers again).
* **Death detection** — a process that exited (SIGKILL, crash, OOM) is
  restarted with **deterministic jittered exponential backoff**, up to
  ``max_restarts`` per node; past the budget the node stays down and the
  fabric routes around it for good.
* **Warm restart** — after a restart the supervisor fires ``on_up`` so
  the fabric can re-advertise the node's capabilities and replay its hot
  results into the fresh (empty) content store, each carry re-verified
  against its pinned sha256 digest on the way in.

Everything here is also the chaos surface: :meth:`kill` SIGKILLs a live
node mid-load exactly like ``kill -9`` would, and
:meth:`repro.engine.faults.ChaosPlan.apply_to_process` drives the same
signals from a seeded plan.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
import zlib
from typing import Callable, Dict, List, Optional

from ..engine.observe import METRICS, Metrics
from .peer import PeerClient, PeerError
from .peer import node_main as _node_main

__all__ = ["FabricSupervisor", "NodeProcess", "restart_backoff_s"]


def restart_backoff_s(
    base_s: float, restart_idx: int, token: str, cap_s: float = 5.0
) -> float:
    """Jittered exponential restart delay, deterministic per (token, idx).

    Pure function: ``base * 2**idx`` scaled by a hash-derived factor in
    ``[0.5, 1.5)`` and capped — the same shape as the registry's disk
    backoff, so N nodes killed together never stampede their restarts.
    """
    base = float(base_s) * (2 ** int(restart_idx))
    h = zlib.crc32(f"{token}|{restart_idx}".encode()) & 0xFFFFFFFF
    return min(float(cap_s), base * (0.5 + h / 2**32))


class NodeProcess:
    """Supervisor-side record of one fabric node process."""

    def __init__(self, name: str):
        self.name = name
        self.process: Optional[multiprocessing.process.BaseProcess] = None
        self.client: Optional[PeerClient] = None
        self.port: Optional[int] = None
        self.misses = 0
        self.restarts = 0
        self.kills = 0
        self.serving = False
        self.gave_up = False
        self.restart_due_s: Optional[float] = None
        self.last_ack_s = 0.0

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid if self.process is not None else None

    def process_alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


class FabricSupervisor:
    """Spawn/heartbeat/restart manager for a set of fabric node processes.

    Parameters:
        names: Node names, one process each.
        node_opts: Per-process options passed to ``node_main`` (executor
            options, store capacity, initial capabilities).
        heartbeat_ms / miss_budget: Probe interval and how many
            consecutive missed acks mark a node suspect.
        heartbeat_timeout_s: Per-probe answer deadline.
        restart_backoff_s / max_restarts: Backoff base and per-node
            restart budget for dead processes.
        on_up: Callback ``(name, client)`` fired after every (re)spawn
            once the node answers its first heartbeat — the fabric's
            warm-restart hook.
    """

    def __init__(
        self,
        names: List[str],
        node_opts: Optional[dict] = None,
        heartbeat_ms: float = 100.0,
        miss_budget: int = 3,
        heartbeat_timeout_s: float = 1.0,
        restart_backoff_base_s: float = 0.05,
        max_restarts: int = 5,
        spawn_timeout_s: float = 60.0,
        request_timeout_s: float = 30.0,
        metrics: Optional[Metrics] = None,
        on_up: Optional[Callable[[str, PeerClient], None]] = None,
    ):
        if not names:
            raise ValueError("a fabric needs at least one node")
        if miss_budget < 1:
            raise ValueError("miss_budget must be >= 1")
        self.names = [str(n) for n in names]
        self.node_opts = dict(node_opts or {})
        self.heartbeat_ms = float(heartbeat_ms)
        self.miss_budget = int(miss_budget)
        self.heartbeat_timeout_s = float(heartbeat_timeout_s)
        self.restart_backoff_base_s = float(restart_backoff_base_s)
        self.max_restarts = int(max_restarts)
        self.spawn_timeout_s = float(spawn_timeout_s)
        self.request_timeout_s = float(request_timeout_s)
        self.metrics = metrics if metrics is not None else METRICS
        self.on_up = on_up
        self._ctx = multiprocessing.get_context("spawn")
        self._nodes: Dict[str, NodeProcess] = {n: NodeProcess(n) for n in self.names}
        self._lock = threading.Lock()
        self._monitor: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._hb_seq = 0
        self.started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn every node, wait for their ports, start the monitor."""
        if self.started:
            return
        for name in self.names:
            self._spawn(self._nodes[name])
        self.started = True
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="fabric-supervisor", daemon=True
        )
        self._monitor.start()

    def stop(self) -> None:
        """Stop the monitor and terminate every node process."""
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
            self._monitor = None
        for rec in self._nodes.values():
            if rec.client is not None:
                rec.client.close()
                rec.client = None
            if rec.process is not None:
                if rec.process.is_alive():
                    rec.process.terminate()
                    rec.process.join(timeout=2.0)
                    if rec.process.is_alive():
                        rec.process.kill()
                        rec.process.join(timeout=2.0)
                rec.process = None
            rec.serving = False
        self.started = False

    def _spawn(self, rec: NodeProcess) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_node_main,
            args=(rec.name, child_conn, self.node_opts),
            name=f"fog-node-{rec.name}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        if not parent_conn.poll(self.spawn_timeout_s):
            process.kill()
            raise RuntimeError(
                f"node {rec.name} did not report its port within "
                f"{self.spawn_timeout_s}s"
            )
        port = int(parent_conn.recv())
        parent_conn.close()
        if rec.client is not None:
            rec.client.close()
        rec.process = process
        rec.port = port
        rec.client = PeerClient(
            rec.name,
            ("127.0.0.1", port),
            request_timeout_s=self.request_timeout_s,
            metrics=self.metrics,
        )
        rec.misses = 0
        rec.serving = True
        rec.restart_due_s = None
        rec.last_ack_s = time.monotonic()
        self.metrics.inc("fabric.spawns")
        if self.on_up is not None:
            self.on_up(rec.name, rec.client)

    # ------------------------------------------------------------------
    # Monitor: heartbeats + restart-with-backoff
    # ------------------------------------------------------------------
    def _monitor_loop(self) -> None:
        interval = self.heartbeat_ms / 1e3
        while not self._stop.wait(interval):
            for rec in self._nodes.values():
                try:
                    self._check(rec)
                except Exception:  # noqa: BLE001 — the monitor must survive
                    self.metrics.inc("fabric.monitor_errors")

    def _check(self, rec: NodeProcess) -> None:
        now = time.monotonic()
        if not rec.process_alive():
            if rec.serving:
                rec.serving = False
                self.metrics.inc("fabric.deaths")
            if rec.gave_up:
                return
            if rec.restart_due_s is None:
                delay = restart_backoff_s(
                    self.restart_backoff_base_s, rec.restarts, rec.name
                )
                rec.restart_due_s = now + delay
                return
            if now < rec.restart_due_s:
                return
            if rec.restarts >= self.max_restarts:
                rec.gave_up = True
                self.metrics.inc("fabric.restart_budget_exhausted")
                return
            rec.restarts += 1
            self.metrics.inc("fabric.restarts")
            try:
                self._spawn(rec)
            except RuntimeError:
                rec.restart_due_s = now + restart_backoff_s(
                    self.restart_backoff_base_s, rec.restarts, rec.name
                )
            return
        # Process is alive: probe it.
        self._hb_seq += 1
        try:
            rec.client.heartbeat(self._hb_seq, timeout_s=self.heartbeat_timeout_s)
        except PeerError:
            rec.misses += 1
            self.metrics.inc("fabric.heartbeat.misses")
            if rec.misses >= self.miss_budget and rec.serving:
                rec.serving = False
                self.metrics.inc("fabric.heartbeat.suspects")
            return
        rec.last_ack_s = time.monotonic()
        recovered = rec.misses >= self.miss_budget or not rec.serving
        rec.misses = 0
        rec.serving = True
        if recovered:
            self.metrics.inc("fabric.heartbeat.recoveries")
            # Welcome-back hook: a node that was suspect (e.g. SIGSTOP)
            # missed any capabilities advertised while it was away —
            # let the fabric re-advertise and replay hot results.
            if self.on_up is not None:
                self.on_up(rec.name, rec.client)

    # ------------------------------------------------------------------
    # Chaos + queries
    # ------------------------------------------------------------------
    def kill(self, name: str) -> Optional[int]:
        """SIGKILL a node process (``kill -9``); returns the pid, if any.

        The monitor notices the death on its next tick and schedules the
        restart — exactly the failure a real edge deployment sees.
        """
        rec = self._nodes[name]
        pid = rec.pid
        if pid is not None and rec.process_alive():
            try:
                os.kill(pid, signal.SIGKILL)
            except ProcessLookupError:
                return None
            rec.kills += 1
            self.metrics.inc("fabric.kills")
            return pid
        return None

    def client(self, name: str) -> Optional[PeerClient]:
        return self._nodes[name].client

    def pid(self, name: str) -> Optional[int]:
        return self._nodes[name].pid

    def serving(self, name: str) -> bool:
        """Is this node routable right now (alive process, fresh acks)?"""
        rec = self._nodes[name]
        return rec.serving and rec.process_alive()

    def serving_names(self) -> List[str]:
        return [n for n in self.names if self.serving(n)]

    def all_serving(self) -> bool:
        return all(self.serving(n) for n in self.names)

    def stats(self) -> Dict[str, object]:
        out = {}
        for name, rec in self._nodes.items():
            out[name] = {
                "pid": rec.pid,
                "port": rec.port,
                "serving": self.serving(name),
                "process_alive": rec.process_alive(),
                "misses": rec.misses,
                "restarts": rec.restarts,
                "kills": rec.kills,
                "gave_up": rec.gave_up,
            }
        return out

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, *exc):
        self.stop()
        return False

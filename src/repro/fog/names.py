"""repro.fog.names — content names for computations and their inputs.

The fog routes *named computations*, the NFN pattern: a request is not
"run this payload" but an interest in a name like ::

    /fog/exec/posit_matmul/bits=8;es=2/sha256:ab12…/sha256:cd34…

— workload, execution parameters, and the sha256 content digests of every
operand, in operand order.  Two requests share a name iff they would
compute the same function over bit-identical inputs, which makes the name
a sound content-store key: a cached result can be replayed for any later
interest with the same name, no matter which node it enters the fog at.

Input digests reuse :func:`repro.engine.registry.array_digest` — the same
sha256-over-(dtype, shape, bytes) scheme the kernel disk cache embeds as
its integrity digest — so tensors, kernel tables and cached results all
live in one naming universe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..engine.registry import array_digest
from ..serve.protocol import Request

__all__ = ["ComputationName", "name_request"]

_PREFIX = "/fog/exec"


@dataclass(frozen=True)
class ComputationName:
    """The canonical name of one deterministic computation.

    ``workload`` names the function, ``params`` its non-tensor arguments as
    sorted ``(key, value)`` string pairs, and ``inputs`` the sha256 hex
    digests of its operand arrays in positional order.
    """

    workload: str
    params: Tuple[Tuple[str, str], ...]
    inputs: Tuple[str, ...]

    def uri(self) -> str:
        """The ``/fog/exec/...`` interest string (stable, hashable)."""
        param_seg = ";".join(f"{k}={v}" for k, v in self.params) or "-"
        input_segs = "/".join(f"sha256:{d}" for d in self.inputs)
        return f"{_PREFIX}/{self.workload}/{param_seg}/{input_segs}"

    @classmethod
    def parse(cls, uri: str) -> "ComputationName":
        """Inverse of :meth:`uri`; raises ``ValueError`` on malformed names.

        Total over arbitrary input: anything that is not a well-formed
        name string — wrong type included — raises ``ValueError``, never
        an incidental ``AttributeError``/``TypeError`` from the parsing
        internals (names arrive off the wire; the error contract is API).
        """
        if not isinstance(uri, str):
            raise ValueError(
                f"computation name must be a str, got {type(uri).__name__}"
            )
        if not uri.startswith(_PREFIX + "/"):
            raise ValueError(f"not a fog computation name: {uri!r}")
        parts = uri[len(_PREFIX) + 1 :].split("/")
        if len(parts) < 3:
            raise ValueError(f"computation name needs workload/params/inputs: {uri!r}")
        workload, param_seg, input_segs = parts[0], parts[1], parts[2:]
        params: Tuple[Tuple[str, str], ...] = ()
        if param_seg != "-":
            pairs = []
            for item in param_seg.split(";"):
                key, sep, value = item.partition("=")
                if not sep or not key:
                    raise ValueError(f"malformed param segment {item!r} in {uri!r}")
                pairs.append((key, value))
            params = tuple(pairs)
        inputs = []
        for seg in input_segs:
            if not seg.startswith("sha256:") or len(seg) != len("sha256:") + 64:
                raise ValueError(f"malformed input digest {seg!r} in {uri!r}")
            inputs.append(seg[len("sha256:") :])
        return cls(workload=workload, params=params, inputs=tuple(inputs))

    def __str__(self) -> str:
        return self.uri()


def name_request(req: Request) -> ComputationName:
    """The :class:`ComputationName` of one validated serve request.

    Pure function of the request's semantic content — workload, format /
    model / multiplier parameters, and operand bytes.  Request identity
    (``id``, ``tenant``, deadlines) deliberately does not participate: the
    whole point of content naming is that *who asked* never changes *what
    is computed*.
    """
    if req.workload == "posit_matmul":
        params = (("bits", str(req.bits)), ("es", str(req.es)))
        inputs = (array_digest(req.a), array_digest(req.b))
    elif req.workload == "nn_predict":
        params = (("bits", str(req.bits)), ("es", str(req.es)), ("model", str(req.model)))
        inputs = (array_digest(req.x),)
    elif req.workload == "approx_matmul":
        params = (("mult", str(req.mult)),)
        inputs = (array_digest(req.a), array_digest(req.b))
    else:
        raise ValueError(f"unnameable workload {req.workload!r}")
    return ComputationName(workload=req.workload, params=params, inputs=inputs)

"""repro.fog.node — one edge node: kernels it owns, results it remembers.

A :class:`FogNode` is the unit of the topology simulator: it *advertises*
a set of capabilities (the serve layer's batch keys — workload plus
format/model/multiplier), executes named computations for those
capabilities through its own :class:`repro.serve.executor.EngineExecutor`,
and keeps a :class:`~repro.fog.store.ContentStore` of results it has
produced or carried.  Kernel tables themselves come from the process-wide
:data:`repro.engine.registry.REGISTRY` — the in-process analogue of fog
machines sharing one prebuilt ``.npz`` table cache.

Nodes are deliberately passive about routing: the
:class:`~repro.fog.topology.FogTopology` decides where an interest goes;
the node only answers "can I serve this name?" three ways — from cache,
by local execution, or not at all.  Crashing a node flips ``alive`` and
wipes its content store (volatile memory is what crashes take with them);
its advertisement survives, which is exactly why stale routes need the
topology's reroute path.
"""

from __future__ import annotations

import time
from typing import Dict, FrozenSet, Optional, Tuple

import numpy as np

from ..engine.observe import METRICS, Metrics
from ..engine.registry import REGISTRY
from ..serve.executor import EngineExecutor
from ..serve.protocol import Request
from .names import ComputationName, name_request
from .store import ContentStore

__all__ = ["FogNode", "NodeDown"]


class NodeDown(Exception):
    """An interest reached a node that is not alive (stale route)."""


def _registry_key_of(name: ComputationName) -> Optional[tuple]:
    """The registry table key whose digest names this computation's kernel.

    Posit workloads execute over the registry's codec value tables; approx
    LUTs live inside the executor, so their provenance stays unnamed.
    """
    params = dict(name.params)
    if name.workload in ("posit_matmul", "nn_predict") and "bits" in params:
        return ("posit", int(params["bits"]), int(params["es"]), "values")
    return None


class FogNode:
    """One simulated edge node (capabilities + executor + content store)."""

    def __init__(
        self,
        name: str,
        capabilities: FrozenSet[Tuple] = frozenset(),
        executor: Optional[EngineExecutor] = None,
        store: Optional[ContentStore] = None,
        metrics: Optional[Metrics] = None,
    ):
        self.name = str(name)
        self.capabilities = frozenset(capabilities)
        self.executor = executor if executor is not None else EngineExecutor()
        self.store = store if store is not None else ContentStore()
        self.metrics = metrics if metrics is not None else METRICS
        self.alive = True
        self.executions = 0
        self.crashes = 0
        self.last_heartbeat_s: Optional[float] = None

    # ------------------------------------------------------------------
    def heartbeat(self, now: Optional[float] = None) -> Dict[str, object]:
        """Answer a liveness probe (raises :class:`NodeDown` when down).

        The in-process analogue of the fabric's heartbeat frame: records
        when the node last acked so a failure detector can age it out.
        """
        if not self.alive:
            raise NodeDown(self.name)
        self.last_heartbeat_s = time.monotonic() if now is None else float(now)
        return {
            "node": self.name,
            "executions": self.executions,
            "store_entries": len(self.store),
            "at_s": self.last_heartbeat_s,
        }

    # ------------------------------------------------------------------
    def serves(self, batch_key: Tuple) -> bool:
        return batch_key in self.capabilities

    def advertise(self, batch_key: Tuple) -> None:
        """Add a capability (the topology's lazy assignment hook)."""
        self.capabilities = self.capabilities | {batch_key}

    # ------------------------------------------------------------------
    def lookup(self, name: ComputationName) -> Optional[np.ndarray]:
        """The cached result for ``name``, or ``None`` (counts hit/miss)."""
        if not self.alive:
            raise NodeDown(self.name)
        result = self.store.get(name.uri())
        if result is not None:
            self.metrics.inc(f"fog.node.{self.name}.cache_hits")
        else:
            self.metrics.inc(f"fog.node.{self.name}.cache_misses")
        return result

    def execute(self, request: Request) -> np.ndarray:
        """Execute one named computation locally and cache the result.

        Raises whatever the engine raises (``DeadlineExceeded``,
        ``ProtocolError``, …) — execution errors are the caller's to
        answer, only *successes* are worth naming and caching.
        """
        if not self.alive:
            raise NodeDown(self.name)
        key = request.batch_key()
        started = time.perf_counter()
        results = self.executor.execute(key, [request])
        result = results[0]
        if isinstance(result, Exception):
            raise result
        cost_ms = (time.perf_counter() - started) * 1e3
        self.executions += 1
        self.metrics.inc(f"fog.node.{self.name}.executions")
        self.carry(name_request(request), result, cost_ms=cost_ms)
        return np.asarray(result)

    def carry(
        self,
        name: ComputationName,
        result: np.ndarray,
        cost_ms: Optional[float] = None,
    ) -> None:
        """Cache a result this node produced or forwarded (on-path caching).

        ``cost_ms`` is the producer's measured recompute expense — the
        value the store's admission policy weighs.  Carried entries whose
        producer didn't report one default to the store's unit cost.
        """
        if not self.alive:
            return
        kernel = None
        reg_key = _registry_key_of(name)
        if reg_key is not None:
            kernel = REGISTRY.content_digest(reg_key)
        cost = 1.0 if cost_ms is None else float(cost_ms)
        if self.store.put(name.uri(), result, kernel_digest=kernel, cost=cost):
            self.metrics.inc(f"fog.node.{self.name}.cache_insertions")

    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Take the node down and lose its volatile state."""
        self.alive = False
        self.crashes += 1
        self.store.clear()
        self.metrics.inc(f"fog.node.{self.name}.crashes")

    def revive(self) -> None:
        self.alive = True

    def close(self) -> None:
        self.executor.close()

    def restart(self) -> None:
        self.executor.restart()

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        return {
            "alive": self.alive,
            "capabilities": sorted("/".join(str(p) for p in key) for key in self.capabilities),
            "executions": self.executions,
            "crashes": self.crashes,
            "store": self.store.stats(),
        }

    def __repr__(self):
        state = "up" if self.alive else "DOWN"
        return f"FogNode({self.name!r}, {state}, caps={len(self.capabilities)})"

"""repro — reproduction of "Next Generation Arithmetic for Edge Computing".

Subpackages (see README.md for the map to the paper's sections):

* :mod:`repro.floats` — parametric IEEE-754-style softfloat
* :mod:`repro.fixedpoint` — two's-complement Q formats
* :mod:`repro.posit` — posits, quire, correctly rounded math functions
* :mod:`repro.circuits` — gate-level netlists and cost models
* :mod:`repro.bitheap` — weighted-bit heaps and compression
* :mod:`repro.fpga` — soft-multiplier mapping, packing, DSP models
* :mod:`repro.generators` — FloPoCo-style faithful operator generators
* :mod:`repro.approx` — approximate multipliers and DNN simulation
* :mod:`repro.engine` — vectorized format-agnostic execution engine with
  cached LUT kernels and a batched inference runner
* :mod:`repro.nn` — numpy DNN framework with quantization and retraining
* :mod:`repro.datasets` — synthetic image and keyword-spotting data
* :mod:`repro.analysis` — ring plots, accuracy curves, information-per-bit
* :mod:`repro.hwcost` — verified posit/float datapath circuits
"""

__version__ = "1.0.0"

__all__ = [
    "floats",
    "fixedpoint",
    "posit",
    "circuits",
    "bitheap",
    "fpga",
    "generators",
    "approx",
    "engine",
    "nn",
    "datasets",
    "analysis",
    "hwcost",
]

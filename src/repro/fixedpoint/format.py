"""Fixed-point format descriptors and policies."""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["QFormat", "Overflow", "Rounding"]


class Overflow(enum.Enum):
    """What to do when a value exceeds the representable range."""

    SATURATE = "saturate"
    WRAP = "wrap"
    ERROR = "error"


class Rounding(enum.Enum):
    """How to quantize a value onto the fixed-point grid."""

    NEAREST_EVEN = "rne"
    NEAREST_AWAY = "rna"
    TRUNCATE = "truncate"  # toward negative infinity (plain bit drop)
    TOWARD_ZERO = "rtz"


@dataclass(frozen=True)
class QFormat:
    """A two's-complement fixed-point format Q``int_bits``.``frac_bits``.

    A signed format stores ``1 + int_bits + frac_bits`` bits; the value of a
    stored integer ``raw`` is ``raw * 2**-frac_bits``.  ``int_bits`` may be
    negative (purely fractional formats whose MSB weight is below 1/2), and
    ``frac_bits`` may be negative (coarse grids) — the same generality
    FloPoCo's fixed-point formats have, which Section II's "computing just
    right" needs to trim every last bit.
    """

    int_bits: int
    frac_bits: int
    signed: bool = True

    def __post_init__(self):
        if self.width < 1:
            raise ValueError(f"empty format Q{self.int_bits}.{self.frac_bits}")

    @property
    def width(self) -> int:
        """Total storage width in bits."""
        return int(self.signed) + self.int_bits + self.frac_bits

    @property
    def scale(self) -> int:
        """The weight of the LSB is ``2**-frac_bits``."""
        return self.frac_bits

    @property
    def max_raw(self) -> int:
        if self.signed:
            return (1 << (self.width - 1)) - 1
        return (1 << self.width) - 1

    @property
    def min_raw(self) -> int:
        if self.signed:
            return -(1 << (self.width - 1))
        return 0

    @property
    def max_value(self) -> float:
        import math

        return math.ldexp(self.max_raw, -self.frac_bits)

    @property
    def min_value(self) -> float:
        import math

        return math.ldexp(self.min_raw, -self.frac_bits)

    @property
    def ulp(self) -> float:
        import math

        return math.ldexp(1, -self.frac_bits)

    def __str__(self) -> str:
        prefix = "Q" if self.signed else "UQ"
        return f"{prefix}{self.int_bits}.{self.frac_bits}"

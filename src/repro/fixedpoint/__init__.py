"""Parametric fixed-point arithmetic.

Fixed-point (integer) representation is the third contender in the paper's
Fig. 9 comparison: "the simplest and fastest format, but has very unbalanced
accuracy about low magnitudes and a very restricted dynamic range".  This
package models signed/unsigned two's-complement Q-formats with explicit
rounding and overflow policies, and is the number system underneath the
FloPoCo-style operator generators of :mod:`repro.generators`.

>>> from repro.fixedpoint import QFormat, FixedPoint
>>> q = QFormat(int_bits=4, frac_bits=4)        # Q4.4, signed
>>> x = FixedPoint.from_float(q, 1.25)
>>> y = FixedPoint.from_float(q, 2.5)
>>> (x * y).to_float()
3.125
"""

from .format import QFormat, Overflow, Rounding
from .fixed import FixedPoint

__all__ = ["QFormat", "Overflow", "Rounding", "FixedPoint"]

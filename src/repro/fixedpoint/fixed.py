"""Fixed-point values and arithmetic."""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Union

from .format import Overflow, QFormat, Rounding

__all__ = ["FixedPoint"]

Number = Union[int, float, Fraction]


def _round_raw(numerator: int, denominator_log2: int, rounding: Rounding) -> int:
    """Round ``numerator / 2**denominator_log2`` to an integer."""
    if denominator_log2 <= 0:
        return numerator << (-denominator_log2)
    cut = denominator_log2
    kept = numerator >> cut  # floor division, also for negatives
    rem = numerator - (kept << cut)
    half = 1 << (cut - 1)
    if rounding is Rounding.TRUNCATE:
        return kept
    if rounding is Rounding.TOWARD_ZERO:
        return kept + (1 if (numerator < 0 and rem) else 0)
    if rounding is Rounding.NEAREST_AWAY:
        if rem > half or (rem == half and numerator >= 0):
            return kept + 1
        return kept
    if rounding is Rounding.NEAREST_EVEN:
        if rem > half or (rem == half and (kept & 1)):
            return kept + 1
        return kept
    raise ValueError(f"unknown rounding {rounding!r}")


class FixedPoint:
    """An immutable fixed-point value: integer ``raw`` scaled by the format.

    The represented value is ``raw * 2**-fmt.frac_bits``.
    """

    __slots__ = ("fmt", "raw")

    def __init__(self, fmt: QFormat, raw: int, overflow: Overflow = Overflow.ERROR):
        raw = self._apply_overflow(fmt, raw, overflow)
        object.__setattr__(self, "fmt", fmt)
        object.__setattr__(self, "raw", raw)

    def __setattr__(self, *a):  # pragma: no cover - immutability guard
        raise AttributeError("FixedPoint is immutable")

    @staticmethod
    def _apply_overflow(fmt: QFormat, raw: int, overflow: Overflow) -> int:
        if fmt.min_raw <= raw <= fmt.max_raw:
            return raw
        if overflow is Overflow.SATURATE:
            return max(fmt.min_raw, min(fmt.max_raw, raw))
        if overflow is Overflow.WRAP:
            span = fmt.max_raw - fmt.min_raw + 1
            return (raw - fmt.min_raw) % span + fmt.min_raw
        raise OverflowError(f"raw value {raw} does not fit {fmt}")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_float(
        cls,
        fmt: QFormat,
        value: float,
        rounding: Rounding = Rounding.NEAREST_EVEN,
        overflow: Overflow = Overflow.SATURATE,
    ) -> "FixedPoint":
        """Quantize a real value onto the format grid."""
        return cls.from_fraction(fmt, Fraction(value), rounding, overflow)

    @classmethod
    def from_fraction(
        cls,
        fmt: QFormat,
        value: Fraction,
        rounding: Rounding = Rounding.NEAREST_EVEN,
        overflow: Overflow = Overflow.SATURATE,
    ) -> "FixedPoint":
        scaled = value * (Fraction(2) ** fmt.frac_bits)
        num, den = scaled.numerator, scaled.denominator
        if den & (den - 1):
            # Not a power of two: widen and round via an exact shift.
            extra = 64 + den.bit_length()
            q = (num << extra) // den
            raw = _round_raw(q, extra, rounding)
        else:
            raw = _round_raw(num, den.bit_length() - 1, rounding)
        return cls(fmt, raw, overflow)

    @classmethod
    def zero(cls, fmt: QFormat) -> "FixedPoint":
        return cls(fmt, 0)

    # ------------------------------------------------------------------
    # Value access
    # ------------------------------------------------------------------
    def to_float(self) -> float:
        return math.ldexp(self.raw, -self.fmt.frac_bits)

    def to_fraction(self) -> Fraction:
        return Fraction(self.raw) * (Fraction(2) ** -self.fmt.frac_bits)

    @property
    def pattern(self) -> int:
        """Two's-complement storage pattern of ``raw``."""
        return self.raw & ((1 << self.fmt.width) - 1)

    # ------------------------------------------------------------------
    # Arithmetic.  Additions/multiplications return *widened* exact results
    # (the "computing just right" discipline: never lose bits silently);
    # call :meth:`resize` to come back to a narrower format explicitly.
    # ------------------------------------------------------------------
    def add(self, other: "FixedPoint") -> "FixedPoint":
        """Exact addition into the minimal enclosing format."""
        f = max(self.fmt.frac_bits, other.fmt.frac_bits)
        i = max(self.fmt.int_bits, other.fmt.int_bits) + 1
        signed = self.fmt.signed or other.fmt.signed
        out = QFormat(i, f, signed)
        raw = (self.raw << (f - self.fmt.frac_bits)) + (other.raw << (f - other.fmt.frac_bits))
        return FixedPoint(out, raw)

    def sub(self, other: "FixedPoint") -> "FixedPoint":
        f = max(self.fmt.frac_bits, other.fmt.frac_bits)
        i = max(self.fmt.int_bits, other.fmt.int_bits) + 1
        out = QFormat(i, f, True)
        raw = (self.raw << (f - self.fmt.frac_bits)) - (other.raw << (f - other.fmt.frac_bits))
        return FixedPoint(out, raw)

    def mul(self, other: "FixedPoint") -> "FixedPoint":
        """Exact multiplication into the minimal enclosing format."""
        f = self.fmt.frac_bits + other.fmt.frac_bits
        signed = self.fmt.signed or other.fmt.signed
        i = self.fmt.int_bits + other.fmt.int_bits + (1 if signed else 0)
        out = QFormat(i, f, signed)
        return FixedPoint(out, self.raw * other.raw)

    def resize(
        self,
        fmt: QFormat,
        rounding: Rounding = Rounding.NEAREST_EVEN,
        overflow: Overflow = Overflow.SATURATE,
    ) -> "FixedPoint":
        """Requantize to another format (the explicit truncation boxes of Fig. 1)."""
        shift = self.fmt.frac_bits - fmt.frac_bits
        raw = _round_raw(self.raw, shift, rounding) if shift > 0 else self.raw << (-shift)
        return FixedPoint(fmt, raw, overflow)

    def negate(self) -> "FixedPoint":
        out = QFormat(self.fmt.int_bits + (0 if self.fmt.signed else 1), self.fmt.frac_bits, True)
        return FixedPoint(out, -self.raw)

    def __add__(self, other):
        return self.add(other)

    def __sub__(self, other):
        return self.sub(other)

    def __mul__(self, other):
        return self.mul(other)

    def __neg__(self):
        return self.negate()

    # ------------------------------------------------------------------
    # Comparison: plain integer comparison once on a common grid.
    # ------------------------------------------------------------------
    def _common(self, other: "FixedPoint"):
        f = max(self.fmt.frac_bits, other.fmt.frac_bits)
        return (
            self.raw << (f - self.fmt.frac_bits),
            other.raw << (f - other.fmt.frac_bits),
        )

    def __eq__(self, other):
        if not isinstance(other, FixedPoint):
            return NotImplemented
        a, b = self._common(other)
        return a == b

    def __lt__(self, other):
        a, b = self._common(other)
        return a < b

    def __le__(self, other):
        a, b = self._common(other)
        return a <= b

    def __gt__(self, other):
        a, b = self._common(other)
        return a > b

    def __ge__(self, other):
        a, b = self._common(other)
        return a >= b

    def __hash__(self):
        return hash((self.to_fraction(),))

    def __repr__(self):
        return f"FixedPoint({self.fmt}, raw={self.raw} = {self.to_float()!r})"

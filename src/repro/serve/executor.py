"""repro.serve.executor — coalesced batches executed through the engine.

The executor is the synchronous back half of the server: the dynamic
batcher hands it one batch key plus the requests coalesced under that key,
and it drives the right engine entry point —

* ``nn_predict`` — samples from all requests stack into one array and run
  through a long-lived :class:`repro.engine.runner.BatchedRunner` (with
  ``workers > 1``, a :class:`repro.engine.parallel.ParallelRunner` spawn
  pool) built, by default, over the network's compiled
  :class:`repro.engine.fused.FusedPlan` (``fused=False`` reverts to the
  per-layer :class:`PositQuantizedNetwork` executors).  Either way the
  model carries ``stable_contractions=True``, and the fused plan is
  bit-identical to the unfused network by construction, so every sample's
  output is byte-equal to solo execution regardless of batch mates,
  worker count, or execution strategy.
* ``posit_matmul`` — each request's operands encode into the shared
  per-format :class:`PositBackend` and contract with one posit rounding
  per output element.
* ``approx_matmul`` — exact int64 LUT contraction through the named
  approximate multiplier's signed behaviour table.

Backends, quantized networks, runners and behaviour tables are all cached
here — construction costs (table builds, pool spawns) are paid once per
server lifetime, not per request.  A chaos-crashed worker pool degrades
through the ParallelRunner ladder (retry → pool rebuild → in-process
fallback), so accepted requests still complete; :meth:`restart` gives
recovered pools their crash budget back.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..approx import TABLE2_SET
from ..approx.simulate import approx_matmul, signed_lut
from ..engine.observe import METRICS, TRACER, Metrics
from ..engine.posit_backend import PositBackend
from ..engine.runner import BatchedRunner
from ..nn.posit_inference import PositQuantizedNetwork
from ..nn.zoo import kws_cnn1, kws_cnn2, resnet_mini
from ..posit.format import PositFormat
from .protocol import ProtocolError, Request

__all__ = ["EngineExecutor", "DeadlineExceeded", "MODELS", "MULTIPLIERS"]

#: The serveable model zoo: name -> zero-arg float-network factory.
#: Fixed seeds make every server process serve bit-identical weights.
MODELS = {
    "resnet": lambda: resnet_mini(seed=0),
    "kws1": lambda: kws_cnn1(seed=0),
    "kws2": lambda: kws_cnn2(seed=0),
}

#: Serveable approximate multipliers (plus ``exact`` -> no table).
MULTIPLIERS = {m.name: m for m in TABLE2_SET}


class DeadlineExceeded(Exception):
    """The request's deadline passed before execution began."""


class EngineExecutor:
    """Execute coalesced request batches against cached engine state.

    Parameters:
        workers: Worker-pool size for ``nn_predict`` runners (``None``/1 =
            in-process).
        nn_batch_size: Micro-batch size inside the runners.
        chaos: Optional :class:`repro.engine.faults.ChaosPlan` injected
            into every runner's pool (chaos testing the serving path).
        task_timeout / pool_restarts: Forwarded to
            :class:`~repro.engine.parallel.ParallelRunner`.
        fused: Serve ``nn_predict`` through compiled
            :class:`~repro.engine.fused.FusedPlan` objects (default).
            Bit-identical to the unfused executors; disable to exercise
            or compare against the per-layer path.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        nn_batch_size: int = 32,
        chaos=None,
        task_timeout: Optional[float] = 30.0,
        pool_restarts: int = 2,
        metrics: Optional[Metrics] = None,
        fused: bool = True,
    ):
        self.workers = workers
        self.nn_batch_size = int(nn_batch_size)
        self.fused = bool(fused)
        self.chaos = chaos
        self.task_timeout = task_timeout
        self.pool_restarts = int(pool_restarts)
        self.metrics = metrics if metrics is not None else METRICS
        self._lock = threading.Lock()
        self._nets: Dict[str, object] = {}
        self._backends: Dict[Tuple[int, int], PositBackend] = {}
        self._runners: Dict[Tuple, BatchedRunner] = {}
        self._luts: Dict[str, Optional[np.ndarray]] = {}
        self.executed = 0

    # ------------------------------------------------------------------
    # Cached engine state
    # ------------------------------------------------------------------
    def _backend(self, bits: int, es: int) -> PositBackend:
        key = (bits, es)
        with self._lock:
            backend = self._backends.get(key)
            if backend is None:
                backend = self._backends[key] = PositBackend(
                    PositFormat(bits, es), stable_contractions=True
                )
            return backend

    def _runner(self, model: str, bits: int, es: int) -> BatchedRunner:
        key = (model, bits, es)
        with self._lock:
            runner = self._runners.get(key)
            if runner is None:
                factory = MODELS.get(model)
                if factory is None:
                    raise ProtocolError(
                        f"unknown model {model!r} (serveable: {sorted(MODELS)})"
                    )
                net = self._nets.get(model)
                if net is None:
                    net = self._nets[model] = factory()
                qnet = PositQuantizedNetwork(
                    net, PositFormat(bits, es), stable_contractions=True
                )
                model = qnet.fused_plan() if self.fused else qnet
                opts = {}
                if self.workers is not None and self.workers > 1:
                    opts = {
                        "chaos": self.chaos,
                        "task_timeout": self.task_timeout,
                        "pool_restarts": self.pool_restarts,
                    }
                runner = self._runners[key] = BatchedRunner(
                    model,
                    batch_size=self.nn_batch_size,
                    workers=self.workers,
                    **opts,
                )
            return runner

    def _lut(self, mult: str) -> Optional[np.ndarray]:
        with self._lock:
            if mult not in self._luts:
                if mult == "exact":
                    self._luts[mult] = None
                elif mult in MULTIPLIERS:
                    self._luts[mult] = signed_lut(MULTIPLIERS[mult])
                else:
                    raise ProtocolError(
                        f"unknown multiplier {mult!r} "
                        f"(serveable: exact, {sorted(MULTIPLIERS)})"
                    )
            return self._luts[mult]

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def execute(self, key: Tuple, requests: List[Request]) -> List[object]:
        """Run one coalesced batch; one result *or exception* per request.

        Requests whose deadline already passed resolve to
        :class:`DeadlineExceeded` without touching the engine; the rest
        execute.  Engine/validation failures resolve individually, so a
        bad request never poisons its batch mates.
        """
        now = time.monotonic()
        results: List[object] = [None] * len(requests)
        live: List[int] = []
        for i, req in enumerate(requests):
            if req.expired(now):
                results[i] = DeadlineExceeded(
                    f"deadline passed {now - req.deadline_s:.3f}s before execution"
                )
                self.metrics.inc("serve.deadline_exceeded")
            else:
                live.append(i)
        if not live:
            return results
        t0 = time.perf_counter()
        workload = key[0]
        with TRACER.span("serve.execute", workload=workload, requests=len(live)):
            try:
                if workload == "nn_predict":
                    self._execute_nn(key, requests, live, results)
                elif workload == "posit_matmul":
                    self._execute_posit(requests, live, results)
                else:
                    self._execute_approx(requests, live, results)
            except Exception as err:  # noqa: BLE001 — resolve, don't drop
                for i in live:
                    if results[i] is None:
                        results[i] = err
        dt = time.perf_counter() - t0
        self.executed += len(live)
        self.metrics.observe("serve.exec_s", dt)
        self.metrics.inc(f"serve.executed.{workload}", len(live))
        return results

    def _execute_nn(self, key, requests, live, results) -> None:
        _, model, bits, es = key
        runner = self._runner(model, bits, es)
        input_shape = tuple(runner.model.net.input_shape)
        ok: List[int] = []
        for i in live:
            if tuple(requests[i].x.shape[1:]) != input_shape:
                results[i] = ProtocolError(
                    f"model {model!r} expects sample shape {input_shape}, "
                    f"got {tuple(requests[i].x.shape[1:])}"
                )
            else:
                ok.append(i)
        if not ok:
            return
        stacked = np.concatenate([requests[i].x for i in ok], axis=0)
        out = runner.run(stacked)
        offset = 0
        for i in ok:
            rows = requests[i].rows
            results[i] = out[offset : offset + rows]
            offset += rows

    def _execute_posit(self, requests, live, results) -> None:
        for i in live:
            req = requests[i]
            backend = self._backend(req.bits, req.es)
            codes = backend.matmul(backend.encode(req.a), backend.encode(req.b))
            results[i] = backend.decode(codes)

    def _execute_approx(self, requests, live, results) -> None:
        for i in live:
            req = requests[i]
            lut = self._lut(req.mult)
            results[i] = approx_matmul(req.a, req.b, lut)

    # ------------------------------------------------------------------
    # Lifecycle + observability
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Join every runner's worker pool (idempotent)."""
        with self._lock:
            for runner in self._runners.values():
                runner.close()

    def restart(self) -> None:
        """Fresh pools + crash budgets for every runner (post-chaos reset)."""
        with self._lock:
            for runner in self._runners.values():
                runner.restart()

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "executed": self.executed,
                "workers": self.workers,
                "fused": self.fused,
                "runners": {
                    "/".join(str(p) for p in key): runner.stats()
                    for key, runner in self._runners.items()
                },
            }

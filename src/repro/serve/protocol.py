"""repro.serve.protocol — the newline-delimited-JSON wire format.

One request per line, one JSON object per request; responses come back as
JSON lines correlated by ``id`` (they may arrive out of order — the
dynamic batcher completes whole batches, not a FIFO).  The same socket
also answers plain ``GET /healthz`` / ``GET /metrics`` HTTP requests (see
:mod:`repro.serve.server`), so one port serves both the data plane and the
scrape plane.

Request shape::

    {"id": "r1", "workload": "posit_matmul", "tenant": "acme",
     "bits": 8, "es": 2, "deadline_ms": 250,
     "a": [[...], ...], "b": [[...], ...]}

Workloads:

* ``posit_matmul`` — posit-rounded ``a @ b``: operands encode into
  posit<bits, es>, the contraction accumulates exact products at 53-bit
  precision, the result rounds once per output element.
* ``nn_predict`` — posit-quantized DNN inference: ``x`` is one sample (or
  a small stack) for a named zoo model (``resnet`` / ``kws1`` / ``kws2``);
  samples from concurrent requests coalesce into one engine batch.
* ``approx_matmul`` — int8 ``a @ b`` through a named approximate
  multiplier's behaviour table (``mult``: ``exact`` or a
  :data:`repro.approx.TABLE2_SET` name like ``trunc6``), exact int64
  accumulation.

Success response: ``{"id", "ok": true, "result", "ms", "batch_rows"}``.
Failure: ``{"id", "ok": false, "error": <code>, "message", and
"retry_after_ms" on admission rejections}``.
"""

from __future__ import annotations

import base64
import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = [
    "WORKLOADS",
    "ProtocolError",
    "Rejected",
    "Request",
    "parse_request",
    "encode_line",
    "decode_line",
    "ok_response",
    "error_response",
    "encode_array",
    "decode_array",
    "request_to_wire",
    "request_from_wire",
    "interest_frame",
    "heartbeat_frame",
    "carry_frame",
]

WORKLOADS = ("posit_matmul", "nn_predict", "approx_matmul")

#: Hard per-request payload ceiling (elements across all arrays): a single
#: oversized request must not be able to wedge the dispatch thread.
MAX_ELEMENTS = 1 << 20


class ProtocolError(ValueError):
    """A malformed request: unparsable JSON, bad fields, oversized payload."""

    def __init__(self, message: str, code: str = "bad_request"):
        super().__init__(message)
        self.code = code


class Rejected(Exception):
    """Admission refused this request; retry after ``retry_after_s``."""

    def __init__(self, reason: str, retry_after_s: float):
        super().__init__(f"rejected: {reason}")
        self.reason = reason
        self.retry_after_s = float(retry_after_s)


@dataclass
class Request:
    """One validated in-flight request (wire fields + server bookkeeping)."""

    id: str
    workload: str
    tenant: str
    bits: int
    es: int
    model: Optional[str] = None
    mult: Optional[str] = None
    a: Optional[np.ndarray] = None
    b: Optional[np.ndarray] = None
    x: Optional[np.ndarray] = None
    #: Row count this request contributes to a coalesced batch.
    rows: int = 1
    #: Monotonic instants stamped by the server.
    received_s: float = 0.0
    deadline_s: Optional[float] = None
    attrs: Dict[str, object] = field(default_factory=dict)

    def batch_key(self) -> Tuple:
        """Requests with equal keys may coalesce into one dispatch."""
        if self.workload == "nn_predict":
            return ("nn_predict", self.model, self.bits, self.es)
        if self.workload == "posit_matmul":
            return ("posit_matmul", self.bits, self.es)
        return ("approx_matmul", self.mult)

    def expired(self, now: float) -> bool:
        return self.deadline_s is not None and now > self.deadline_s


def _array_field(obj: dict, name: str, ndim_ok: Tuple[int, ...]) -> np.ndarray:
    try:
        arr = np.asarray(obj[name], dtype=np.float64)
    except KeyError:
        raise ProtocolError(f"missing array field {name!r}")
    except (TypeError, ValueError) as err:
        raise ProtocolError(f"field {name!r} is not numeric: {err}")
    if arr.ndim not in ndim_ok:
        raise ProtocolError(
            f"field {name!r} must have {ndim_ok} dims, got {arr.ndim}"
        )
    if arr.size == 0:
        raise ProtocolError(f"field {name!r} is empty")
    if arr.size > MAX_ELEMENTS:
        raise ProtocolError(
            f"field {name!r} has {arr.size} elements (limit {MAX_ELEMENTS})",
            code="too_large",
        )
    if not np.all(np.isfinite(arr)):
        raise ProtocolError(f"field {name!r} contains non-finite values")
    return arr


def parse_request(obj: dict) -> Request:
    """Validate one decoded JSON object into a :class:`Request`."""
    if not isinstance(obj, dict):
        raise ProtocolError("request must be a JSON object")
    req_id = str(obj.get("id", ""))
    if not req_id:
        raise ProtocolError("request needs a non-empty 'id'")
    workload = obj.get("workload")
    if workload not in WORKLOADS:
        raise ProtocolError(
            f"unknown workload {workload!r} (expected one of {list(WORKLOADS)})"
        )
    try:
        bits = int(obj.get("bits", 8))
        es = int(obj.get("es", 2))
    except (TypeError, ValueError):
        raise ProtocolError("'bits' and 'es' must be integers")
    if not (3 <= bits <= 32) or not (0 <= es <= 4):
        raise ProtocolError(f"unsupported format posit<{bits},{es}>")
    req = Request(
        id=req_id,
        workload=workload,
        tenant=str(obj.get("tenant", "default")),
        bits=bits,
        es=es,
    )
    if workload == "posit_matmul":
        req.a = _array_field(obj, "a", (2,))
        req.b = _array_field(obj, "b", (2,))
        if req.a.shape[1] != req.b.shape[0]:
            raise ProtocolError(
                f"shape mismatch {req.a.shape} @ {req.b.shape}"
            )
        req.rows = req.a.shape[0]
    elif workload == "nn_predict":
        req.model = str(obj.get("model", "kws1"))
        x = _array_field(obj, "x", (3, 4))
        if x.ndim == 3:  # one sample -> batch of one
            x = x[None]
        req.x = x
        req.rows = x.shape[0]
    else:  # approx_matmul
        req.mult = str(obj.get("mult", "exact"))
        a = _array_field(obj, "a", (2,))
        b = _array_field(obj, "b", (2,))
        if a.shape[1] != b.shape[0]:
            raise ProtocolError(f"shape mismatch {a.shape} @ {b.shape}")
        if (
            np.any(a != np.round(a))
            or np.any(b != np.round(b))
            or a.min() < -128
            or a.max() > 127
            or b.min() < -128
            or b.max() > 127
        ):
            raise ProtocolError("approx_matmul operands must be int8-valued")
        req.a = a.astype(np.int64)
        req.b = b.astype(np.int64)
        req.rows = req.a.shape[0]
    deadline_ms = obj.get("deadline_ms")
    if deadline_ms is not None:
        try:
            req.attrs["deadline_ms"] = float(deadline_ms)
        except (TypeError, ValueError):
            raise ProtocolError("'deadline_ms' must be a number")
        if req.attrs["deadline_ms"] <= 0:
            raise ProtocolError("'deadline_ms' must be positive")
    return req


# ----------------------------------------------------------------------
# Line codec + response builders
# ----------------------------------------------------------------------
def encode_line(obj: dict) -> bytes:
    return (json.dumps(obj, separators=(",", ":")) + "\n").encode()


def decode_line(line: bytes) -> dict:
    try:
        return json.loads(line.decode())
    except (UnicodeDecodeError, ValueError) as err:
        raise ProtocolError(f"unparsable request line: {err}")


def ok_response(
    req_id: str, result: np.ndarray, ms: float, batch_rows: int
) -> dict:
    return {
        "id": req_id,
        "ok": True,
        "result": np.asarray(result).tolist(),
        "ms": round(float(ms), 4),
        "batch_rows": int(batch_rows),
    }


def error_response(
    req_id: str,
    code: str,
    message: str,
    retry_after_ms: Optional[float] = None,
) -> dict:
    out = {"id": req_id, "ok": False, "error": code, "message": message}
    if retry_after_ms is not None:
        out["retry_after_ms"] = round(float(retry_after_ms), 3)
    return out


# ----------------------------------------------------------------------
# Fabric wire format: arrays, requests and frames between fog peers
# ----------------------------------------------------------------------
# The cross-process fabric (:mod:`repro.fog.fabric`) reuses this module's
# NDJSON line codec but carries tensors as base64 raw bytes plus dtype and
# shape instead of JSON number lists: the bytes that leave one process are
# exactly the bytes that arrive in the other, so the fog's byte-identity
# contract survives the socket with no float round-trip argument needed.

def encode_array(arr: np.ndarray) -> dict:
    """A JSON-able ``{dtype, shape, data}`` triple carrying exact bytes."""
    a = np.ascontiguousarray(arr)
    return {
        "dtype": str(a.dtype),
        "shape": list(a.shape),
        "data": base64.b64encode(a.tobytes()).decode("ascii"),
    }


def decode_array(obj) -> np.ndarray:
    """Inverse of :func:`encode_array`; raises :class:`ProtocolError`.

    An ``ndarray`` passes straight through (as a copy): the binary frame
    codec (:mod:`repro.fog.frames`) restores arrays before a frame
    reaches any handler, so fabric code decoding a response field works
    identically on legacy base64 frames and binary frames.
    """
    if isinstance(obj, np.ndarray):
        if obj.dtype.hasobject:
            raise ProtocolError("object dtypes cannot cross the wire")
        if obj.size > MAX_ELEMENTS:
            raise ProtocolError(
                f"array has {obj.size} elements (limit {MAX_ELEMENTS})",
                code="too_large",
            )
        return np.array(obj, copy=True)
    if not isinstance(obj, dict):
        raise ProtocolError("array field must be a {dtype, shape, data} object")
    try:
        dtype = np.dtype(str(obj["dtype"]))
        shape = tuple(int(n) for n in obj["shape"])
        raw = base64.b64decode(str(obj["data"]).encode("ascii"), validate=True)
    except KeyError as err:
        raise ProtocolError(f"array object missing field {err}")
    except (TypeError, ValueError) as err:
        raise ProtocolError(f"malformed array object: {err}")
    count = 1
    for n in shape:
        if n < 0:
            raise ProtocolError(f"negative dimension in shape {shape}")
        count *= n
    if count > MAX_ELEMENTS:
        raise ProtocolError(
            f"array has {count} elements (limit {MAX_ELEMENTS})", code="too_large"
        )
    if len(raw) != count * dtype.itemsize:
        raise ProtocolError(
            f"array payload is {len(raw)} bytes, expected {count * dtype.itemsize}"
        )
    return np.frombuffer(raw, dtype=dtype).reshape(shape).copy()


#: Request fields that cross the fabric wire verbatim (arrays travel as
#: :func:`encode_array` objects; server bookkeeping stays home).
_WIRE_SCALARS = ("id", "workload", "tenant", "bits", "es", "model", "mult", "rows")


def request_to_wire(req: Request, binary: bool = False) -> dict:
    """A validated :class:`Request` as a JSON-able fabric payload.

    With ``binary=True`` arrays stay raw ``ndarray`` values for
    :func:`repro.fog.frames.pack_frame` to lift into the frame's binary
    body — no base64, no +33% wire bytes; without it they become
    :func:`encode_array` objects and the payload is plain JSON.
    """
    out = {name: getattr(req, name) for name in _WIRE_SCALARS}
    for name in ("a", "b", "x"):
        arr = getattr(req, name)
        if arr is not None:
            out[name] = np.ascontiguousarray(arr) if binary else encode_array(arr)
    return out


def request_from_wire(obj: dict) -> Request:
    """Rebuild a :class:`Request` shipped by :func:`request_to_wire`.

    Peers trust each other's validation (every request was parsed at the
    serve front door), so this only re-checks structure, not semantics.
    """
    if not isinstance(obj, dict):
        raise ProtocolError("wire request must be a JSON object")
    try:
        req = Request(
            id=str(obj["id"]),
            workload=str(obj["workload"]),
            tenant=str(obj.get("tenant", "default")),
            bits=int(obj["bits"]),
            es=int(obj["es"]),
            model=obj.get("model"),
            mult=obj.get("mult"),
            rows=int(obj.get("rows", 1)),
        )
    except (KeyError, TypeError, ValueError) as err:
        raise ProtocolError(f"malformed wire request: {err!r}")
    if req.workload not in WORKLOADS:
        raise ProtocolError(f"unknown workload {req.workload!r}")
    for name in ("a", "b", "x"):
        if obj.get(name) is not None:
            setattr(req, name, decode_array(obj[name]))
    return req


def interest_frame(
    req: Request, budget_ms: Optional[float] = None, binary: bool = False
) -> dict:
    """One fabric interest: a named computation plus its remaining deadline
    budget in milliseconds.  The budget is decremented by every hop and
    retry on the sending side — a peer that receives a spent budget must
    answer ``deadline`` without executing, never work past it.
    ``binary=True`` leaves operand arrays raw for the binary frame codec."""
    frame = {"op": "interest", "request": request_to_wire(req, binary=binary)}
    if budget_ms is not None:
        frame["budget_ms"] = round(float(budget_ms), 3)
    return frame


def heartbeat_frame(seq: int) -> dict:
    """One liveness probe; peers echo ``seq`` so acks can't be conflated."""
    return {"op": "heartbeat", "seq": int(seq)}


def carry_frame(
    name_uri: str,
    result: np.ndarray,
    digest: str,
    cost: Optional[float] = None,
    binary: bool = False,
) -> dict:
    """On-path cache repopulation: a result and its pinned sha256 digest.

    The receiver re-computes the digest of the decoded bytes and refuses
    the entry on mismatch — the same integrity posture the content store
    applies on every read.  ``cost`` (recompute milliseconds, when the
    producer measured it) travels along so the receiving store's
    admission policy can weigh the entry; ``binary=True`` leaves the
    result raw for the binary frame codec.
    """
    frame = {
        "op": "carry",
        "name": str(name_uri),
        "result": np.ascontiguousarray(result) if binary else encode_array(result),
        "digest": str(digest),
    }
    if cost is not None:
        frame["cost"] = round(float(cost), 4)
    return frame

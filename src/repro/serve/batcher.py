"""repro.serve.batcher — dynamic batching for the asyncio serving path.

Concurrent requests with the same batch key (same workload, model and
format) coalesce into one engine dispatch.  A batch flushes when either

* its accumulated row count reaches ``max_batch`` (size trigger), or
* ``max_delay_ms`` has elapsed since its first request arrived — clipped
  earlier when a member's deadline would otherwise expire in the queue
  (deadline trigger).

Dispatch happens through an async callable the server provides (engine
work runs on a dispatch thread so the event loop keeps accepting);
per-request futures resolve to results or exceptions individually, so one
poisoned request cannot fail its batch mates.

The *coalescing contract* — a request's result is byte-equal whether it
runs solo or inside any batch — is not the batcher's to enforce; it holds
because the engine executes coalesced rows through batch-composition-
independent kernels (:func:`repro.engine.kernels.stable_matmul` and
elementwise/per-sample ops).  ``tests/test_serve_identity.py`` pins it.
"""

from __future__ import annotations

import asyncio
import time
from typing import Awaitable, Callable, Dict, List, Optional, Tuple

from ..engine.observe import METRICS, Metrics
from .protocol import Request

__all__ = ["DynamicBatcher"]

#: Histogram bounds for coalesced batch sizes (rows per dispatch).
BATCH_BOUNDS = (1, 2, 4, 8, 16, 32, 64, 128, 256)


class _Pending:
    __slots__ = ("request", "future", "enqueued_s")

    def __init__(self, request: Request, future: "asyncio.Future"):
        self.request = request
        self.future = future
        self.enqueued_s = time.monotonic()


class DynamicBatcher:
    """Coalesce admitted requests into size- or deadline-triggered batches.

    Parameters:
        dispatch: ``async (key, requests) -> list`` executing one coalesced
            batch; returns one result **or exception instance** per request,
            in order.
        max_batch: Row budget per dispatch (the size trigger).
        max_delay_ms: Longest a request may wait for batch mates.
    """

    def __init__(
        self,
        dispatch: Callable[[Tuple, List[Request]], Awaitable[List[object]]],
        max_batch: int = 16,
        max_delay_ms: float = 2.0,
        metrics: Optional[Metrics] = None,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_delay_ms < 0:
            raise ValueError("max_delay_ms must be >= 0")
        self._dispatch = dispatch
        self.max_batch = int(max_batch)
        self.max_delay_s = float(max_delay_ms) / 1e3
        self.metrics = metrics if metrics is not None else METRICS
        self._buckets: Dict[Tuple, List[_Pending]] = {}
        self._timers: Dict[Tuple, asyncio.TimerHandle] = {}
        self._tasks: set = set()
        self.batches = 0

    # ------------------------------------------------------------------
    def submit(self, request: Request) -> "asyncio.Future":
        """Enqueue one admitted request; the future resolves to its result."""
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        key = request.batch_key()
        bucket = self._buckets.setdefault(key, [])
        bucket.append(_Pending(request, future))
        rows = sum(p.request.rows for p in bucket)
        if rows >= self.max_batch:
            self._flush(key)
            return future
        delay = self.max_delay_s
        if request.deadline_s is not None:
            # Leave the request at least half its remaining budget for
            # execution: flush early rather than expire in the queue.
            remaining = request.deadline_s - time.monotonic()
            delay = max(0.0, min(delay, remaining / 2.0))
        timer = self._timers.get(key)
        if timer is None:
            self._timers[key] = loop.call_later(delay, self._flush, key)
        elif delay < max(0.0, timer.when() - loop.time()):
            timer.cancel()
            self._timers[key] = loop.call_later(delay, self._flush, key)
        return future

    def _flush(self, key: Tuple) -> None:
        timer = self._timers.pop(key, None)
        if timer is not None:
            timer.cancel()
        bucket = self._buckets.pop(key, None)
        if not bucket:
            return
        self.batches += 1
        now = time.monotonic()
        rows = sum(p.request.rows for p in bucket)
        self.metrics.observe("serve.batch_rows", rows, bounds=BATCH_BOUNDS)
        self.metrics.observe(
            "serve.batch_requests", len(bucket), bounds=BATCH_BOUNDS
        )
        for p in bucket:
            self.metrics.observe("serve.queue_wait_s", now - p.enqueued_s)
        task = asyncio.get_running_loop().create_task(self._run(key, bucket))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _run(self, key: Tuple, bucket: List[_Pending]) -> None:
        try:
            results = await self._dispatch(key, [p.request for p in bucket])
            if len(results) != len(bucket):
                raise RuntimeError(
                    f"dispatch returned {len(results)} results for "
                    f"{len(bucket)} requests"
                )
        except Exception as err:  # noqa: BLE001 — every future must resolve
            results = [err] * len(bucket)
        for p, result in zip(bucket, results):
            if p.future.cancelled():
                continue
            if isinstance(result, Exception):
                p.future.set_exception(result)
            else:
                p.future.set_result(result)

    # ------------------------------------------------------------------
    async def drain(self) -> None:
        """Flush every bucket and wait for in-flight dispatches to finish."""
        for key in list(self._buckets):
            self._flush(key)
        while self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)

    def stats(self) -> Dict[str, int]:
        return {
            "batches": self.batches,
            "pending_requests": sum(len(b) for b in self._buckets.values()),
            "inflight_dispatches": len(self._tasks),
        }

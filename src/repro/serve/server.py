"""repro.serve.server — the asyncio edge-inference front end.

One listening socket speaks two protocols, sniffed from the first bytes of
each connection:

* **NDJSON data plane** — one JSON request per line
  (:mod:`repro.serve.protocol`), responses correlated by ``id``.  A
  connection may pipeline any number of requests; responses arrive as
  their batches complete.
* **HTTP scrape plane** — plain ``GET /healthz`` (liveness), ``GET
  /metrics`` (Prometheus text format via
  :meth:`repro.engine.observe.Metrics.to_prometheus`) and ``GET /stats``
  (JSON server/executor detail), so the same port a load balancer checks
  is the one Prometheus scrapes.

Request lifecycle: parse → admission (bounded queue + per-tenant token
buckets, reject-with-retry-after) → dynamic batcher (size/deadline
coalescing) → executor on the dispatch thread → response.  **Every
admitted request is answered exactly once** — deadline misses and engine
failures become error responses, never silence; the zero-drop invariant
the chaos tests pin.  Engine work never runs on the event loop: a
single-thread dispatch executor serializes engine access (runner caches
and kernel registries are shared state) while the loop keeps accepting.
"""

from __future__ import annotations

import asyncio
import json
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..engine.observe import METRICS, Metrics
from .admission import AdmissionController
from .batcher import DynamicBatcher
from .executor import DeadlineExceeded, EngineExecutor
from .protocol import (
    ProtocolError,
    Rejected,
    Request,
    decode_line,
    encode_line,
    error_response,
    ok_response,
    parse_request,
)

__all__ = ["ServeConfig", "ReproServer"]

#: Longest request line the reader will buffer (NDJSON payload ceiling).
_LINE_LIMIT = 32 * 1024 * 1024


@dataclass
class ServeConfig:
    """Every serving knob in one picklable bag."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; read back from ``server.port``
    #: Row budget per coalesced dispatch (the batcher's size trigger).
    max_batch: int = 16
    #: Longest a request waits for batch mates before dispatch.
    max_delay_ms: float = 2.0
    #: Bounded-queue admission limit (backpressure past this).
    queue_limit: int = 64
    #: Per-tenant sustained requests/s (None = no quotas) and burst.
    tenant_rate: Optional[float] = None
    tenant_burst: Optional[float] = None
    #: Deadline applied when a request names none (None = unbounded).
    default_deadline_ms: Optional[float] = 1000.0
    #: nn_predict worker-pool size (None/1 = in-process execution).
    workers: Optional[int] = None
    nn_batch_size: int = 32
    #: Serve nn_predict through compiled fused plans (bit-identical to the
    #: unfused executors; False reverts to the per-layer path).
    fused: bool = True
    #: Optional ChaosPlan injected into runner pools (testing).
    chaos: object = None
    extra_executor_opts: dict = field(default_factory=dict)
    #: Dispatch through an N-node :class:`repro.fog.FogTopology` instead of
    #: a single in-process engine executor (None = direct execution).
    fog_nodes: Optional[int] = None
    fog_replicas: int = 2
    #: Promote the fog to a cross-process fabric: each node a supervised
    #: OS process behind sockets (:class:`repro.fog.FogFabric`), with
    #: heartbeat failure detection, circuit breakers and restart-with-
    #: backoff.  Requires ``fog_nodes``.
    fog_fabric: bool = False
    #: Fabric failure-detector cadence and miss budget.
    fog_heartbeat_ms: float = 100.0
    fog_miss_budget: int = 3
    #: Hedge delay for fabric interests (None = no hedging).
    fog_hedge_ms: Optional[float] = None
    #: Deadline budget for fabric interests that carry no deadline.
    fog_budget_ms: float = 2000.0
    #: Fall back to in-process execution when every owner is unreachable
    #: (counted in ``fabric.degraded_local``); False raises instead.
    fog_degrade_local: bool = True
    #: Per-node content-store admission policy: ``"lru"`` (classic) or
    #: ``"costaware"`` (frequency-sketch × recompute-cost admission).
    fog_store_policy: str = "lru"
    #: Re-hash cached entries against their pinned digest every Nth hit
    #: (1 = every hit, the historical default; 0 = never).
    fog_store_reverify: int = 1


class ReproServer:
    """The asyncio serving front end over an :class:`EngineExecutor`."""

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        executor: Optional[EngineExecutor] = None,
        metrics: Optional[Metrics] = None,
    ):
        self.config = config if config is not None else ServeConfig()
        self.metrics = metrics if metrics is not None else METRICS
        if executor is not None:
            self.executor = executor
        elif self.config.fog_nodes:
            # Imported here: repro.fog builds on repro.serve, not vice versa.
            from ..fog.executor import FogExecutor

            executor_opts = {
                "workers": self.config.workers,
                "nn_batch_size": self.config.nn_batch_size,
                "chaos": self.config.chaos,
                "fused": self.config.fused,
                **self.config.extra_executor_opts,
            }
            if self.config.fog_fabric:
                from ..fog.fabric import FogFabric

                # Fabric nodes are daemonic processes and cannot spawn
                # grandchildren, so their executors stay in-process.
                fabric_opts = dict(executor_opts)
                fabric_opts["workers"] = None
                fabric_opts.pop("chaos", None)
                self.executor = FogExecutor(
                    topology=FogFabric(
                        nodes=self.config.fog_nodes,
                        replicas=self.config.fog_replicas,
                        heartbeat_ms=self.config.fog_heartbeat_ms,
                        miss_budget=self.config.fog_miss_budget,
                        hedge_ms=self.config.fog_hedge_ms,
                        default_budget_ms=self.config.fog_budget_ms,
                        degrade_local=self.config.fog_degrade_local,
                        store_policy=self.config.fog_store_policy,
                        store_reverify=self.config.fog_store_reverify,
                        metrics=self.metrics,
                        executor_opts=fabric_opts,
                    ),
                    metrics=self.metrics,
                )
            else:
                self.executor = FogExecutor(
                    nodes=self.config.fog_nodes,
                    replicas=self.config.fog_replicas,
                    metrics=self.metrics,
                    executor_opts=executor_opts,
                    store_policy=self.config.fog_store_policy,
                    store_reverify=self.config.fog_store_reverify,
                )
        else:
            self.executor = EngineExecutor(
                workers=self.config.workers,
                nn_batch_size=self.config.nn_batch_size,
                chaos=self.config.chaos,
                metrics=self.metrics,
                fused=self.config.fused,
                **self.config.extra_executor_opts,
            )
        self.admission = AdmissionController(
            queue_limit=self.config.queue_limit,
            tenant_rate=self.config.tenant_rate,
            tenant_burst=self.config.tenant_burst,
            metrics=self.metrics,
        )
        self.batcher = DynamicBatcher(
            self._dispatch,
            max_batch=self.config.max_batch,
            max_delay_ms=self.config.max_delay_ms,
            metrics=self.metrics,
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._dispatch_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-dispatch"
        )
        self._conn_tasks: set = set()
        self.started_s = time.monotonic()
        #: The zero-drop ledger: every admit must land one response.
        self.accepted = 0
        self.responded = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind and listen; returns ``(host, port)`` actually bound."""
        self._server = await asyncio.start_server(
            self._handle_conn,
            self.config.host,
            self.config.port,
            limit=_LINE_LIMIT,
        )
        return self.address

    @property
    def address(self) -> Tuple[str, int]:
        sock = self._server.sockets[0]
        return sock.getsockname()[:2]

    @property
    def port(self) -> int:
        return self.address[1]

    async def stop(self) -> None:
        """Drain in-flight work, close the listener and the worker pools."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.batcher.drain()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*list(self._conn_tasks), return_exceptions=True)
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.executor.close)
        self._dispatch_pool.shutdown(wait=True)

    async def __aenter__(self):
        await self.start()
        return self

    async def __aexit__(self, *exc):
        await self.stop()
        return False

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            first = await reader.readline()
        except (asyncio.LimitOverrunError, ConnectionError):
            writer.close()
            return
        if first.startswith(b"GET ") or first.startswith(b"HEAD "):
            await self._handle_http(first, reader, writer)
            return
        write_lock = asyncio.Lock()
        line = first
        pending: set = set()
        while line:
            line = line.strip()
            if line:
                task = asyncio.get_running_loop().create_task(
                    self._handle_line(line, writer, write_lock)
                )
                pending.add(task)
                task.add_done_callback(pending.discard)
                self._conn_tasks.add(task)
                task.add_done_callback(self._conn_tasks.discard)
            try:
                line = await reader.readline()
            except (asyncio.LimitOverrunError, ConnectionError, ValueError):
                break
        if pending:
            await asyncio.gather(*list(pending), return_exceptions=True)
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def _handle_line(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        t0 = time.monotonic()
        req_id = ""
        try:
            obj = decode_line(line)
            req_id = str(obj.get("id", "")) if isinstance(obj, dict) else ""
            request = parse_request(obj)
        except ProtocolError as err:
            self.metrics.inc("serve.bad_requests")
            await self._send(
                writer, write_lock, error_response(req_id, err.code, str(err))
            )
            return
        try:
            self.admission.admit(request.tenant, now=t0)
        except Rejected as err:
            await self._send(
                writer,
                write_lock,
                error_response(
                    request.id,
                    "rejected",
                    f"admission rejected: {err.reason}",
                    retry_after_ms=err.retry_after_s * 1e3,
                ),
            )
            return
        # Past this point the request is *accepted*: exactly one response
        # must be written, whatever happens downstream.
        self.accepted += 1
        request.received_s = t0
        deadline_ms = request.attrs.get(
            "deadline_ms", self.config.default_deadline_ms
        )
        if deadline_ms is not None:
            request.deadline_s = t0 + deadline_ms / 1e3
        try:
            result = await self.batcher.submit(request)
            response = ok_response(
                request.id,
                result,
                ms=(time.monotonic() - t0) * 1e3,
                batch_rows=request.attrs.get("batch_rows", request.rows),
            )
        except DeadlineExceeded as err:
            response = error_response(request.id, "deadline_exceeded", str(err))
        except ProtocolError as err:
            response = error_response(request.id, err.code, str(err))
        except Exception as err:  # noqa: BLE001 — answered, never dropped
            self.metrics.inc("serve.internal_errors")
            response = error_response(request.id, "internal", repr(err))
        finally:
            self.admission.release()
        await self._send(writer, write_lock, response)
        self.responded += 1
        self.metrics.observe("serve.latency_s", time.monotonic() - t0)

    async def _send(
        self, writer: asyncio.StreamWriter, lock: asyncio.Lock, obj: dict
    ) -> None:
        try:
            async with lock:
                writer.write(encode_line(obj))
                await writer.drain()
        except (ConnectionError, OSError):
            self.metrics.inc("serve.client_gone")

    # ------------------------------------------------------------------
    # Dispatch (batcher -> executor thread)
    # ------------------------------------------------------------------
    async def _dispatch(self, key: Tuple, requests: List[Request]) -> List[object]:
        for req in requests:
            req.attrs["batch_rows"] = sum(r.rows for r in requests)
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._dispatch_pool, self.executor.execute, key, requests
        )

    # ------------------------------------------------------------------
    # HTTP scrape plane
    # ------------------------------------------------------------------
    async def _handle_http(
        self,
        first: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            path = first.split()[1].decode()
        except (IndexError, UnicodeDecodeError):
            path = "/"
        while True:  # drain request headers
            try:
                line = await reader.readline()
            except (asyncio.LimitOverrunError, ConnectionError, ValueError):
                break
            if not line or line in (b"\r\n", b"\n"):
                break
        if path == "/healthz":
            status, ctype, body = "200 OK", "text/plain", "ok\n"
        elif path == "/metrics":
            self.metrics.set_gauge(
                "serve.uptime_s", time.monotonic() - self.started_s
            )
            status, ctype, body = (
                "200 OK",
                "text/plain; version=0.0.4",
                self.metrics.to_prometheus(),
            )
        elif path == "/stats":
            status, ctype, body = (
                "200 OK",
                "application/json",
                json.dumps(self.describe(), default=str) + "\n",
            )
        else:
            status, ctype, body = "404 Not Found", "text/plain", "not found\n"
        payload = body.encode()
        head = (
            f"HTTP/1.0 {status}\r\nContent-Type: {ctype}\r\n"
            f"Content-Length: {len(payload)}\r\nConnection: close\r\n\r\n"
        )
        try:
            writer.write(head.encode() + payload)
            await writer.drain()
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    # ------------------------------------------------------------------
    def describe(self) -> dict:
        """JSON-able server state (the ``/stats`` body)."""
        return {
            "uptime_s": time.monotonic() - self.started_s,
            "accepted": self.accepted,
            "responded": self.responded,
            "admission": self.admission.stats(),
            "batcher": self.batcher.stats(),
            "executor": self.executor.stats(),
            "config": {
                "max_batch": self.config.max_batch,
                "max_delay_ms": self.config.max_delay_ms,
                "queue_limit": self.config.queue_limit,
                "tenant_rate": self.config.tenant_rate,
                "workers": self.config.workers,
            },
        }

"""repro.serve — asyncio edge-inference serving layer over the engine.

The "millions of users" front end: an NDJSON-over-TCP service (plus HTTP
``/healthz`` / ``/metrics`` / ``/stats`` on the same port) that coalesces
concurrent posit/approximate arithmetic and DNN-inference requests into
dynamic batches for the vectorized engine, under admission control
(bounded queue with retry-after backpressure, per-tenant token-bucket
quotas, per-request deadlines).

Quickstart::

    import asyncio
    from repro.serve import ReproServer, ServeConfig, ServeClient

    async def main():
        async with ReproServer(ServeConfig(port=0, workers=2)) as server:
            client = await ServeClient.connect(*server.address)
            resp = await client.request(
                workload="posit_matmul", bits=8, es=2,
                a=[[1.0, 2.0]], b=[[3.0], [4.0]],
            )
            print(resp["result"])
            await client.close()

    asyncio.run(main())

Or from a shell: ``python -m repro.serve --port 7070 --workers 2``.

The coalescing contract: a request's result is **byte-equal** whether it
is served solo, coalesced into any batch, or sharded across any worker
count — the engine's batch entry points run serving contractions through
:func:`repro.engine.kernels.stable_matmul`, whose accumulation order is
independent of batch composition.
"""

from .admission import AdmissionController, TokenBucket
from .batcher import DynamicBatcher
from .client import ServeClient, http_get
from .executor import MODELS, MULTIPLIERS, DeadlineExceeded, EngineExecutor
from .protocol import (
    WORKLOADS,
    ProtocolError,
    Rejected,
    Request,
    parse_request,
)
from .server import ReproServer, ServeConfig

__all__ = [
    "AdmissionController",
    "TokenBucket",
    "DynamicBatcher",
    "ServeClient",
    "http_get",
    "EngineExecutor",
    "DeadlineExceeded",
    "MODELS",
    "MULTIPLIERS",
    "WORKLOADS",
    "ProtocolError",
    "Rejected",
    "Request",
    "parse_request",
    "ReproServer",
    "ServeConfig",
]

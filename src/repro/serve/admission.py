"""repro.serve.admission — bounded queue, per-tenant quotas, deadlines.

Admission control is what lets the server say *no* cheaply instead of
failing expensively: a bounded in-flight budget provides backpressure
(reject-with-retry-after once full, instead of queueing without bound
until latency is unbounded too), and per-tenant token buckets keep one hot
tenant from starving the rest.  Both decisions are O(1) per request and
happen *before* any payload touches the engine.

Every decision is observable: ``serve.queue_depth`` gauges the in-flight
count, ``serve.admitted`` / ``serve.rejected.<reason>`` count outcomes,
and ``serve.tenant.<tenant>.requests`` / ``.rejected`` attribute them.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from ..engine.observe import METRICS, Metrics
from .protocol import Rejected

__all__ = ["TokenBucket", "AdmissionController"]


class TokenBucket:
    """A standard token bucket: ``rate`` tokens/s, capacity ``burst``.

    :meth:`take` returns 0.0 and consumes a token when one is available,
    otherwise the time until the next token accrues — which becomes the
    rejection's ``retry_after`` hint.
    """

    __slots__ = ("rate", "burst", "tokens", "stamp")

    def __init__(self, rate: float, burst: float):
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        #: Lazily anchored to the first :meth:`take`'s clock, so callers
        #: may supply any monotone ``now`` sequence (e.g. synthetic test
        #: clocks) without racing ``time.monotonic()``.
        self.stamp: Optional[float] = None

    def take(self, now: Optional[float] = None) -> float:
        now = time.monotonic() if now is None else now
        if self.stamp is not None:
            elapsed = max(0.0, now - self.stamp)
            self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.stamp = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return 0.0
        return (1.0 - self.tokens) / self.rate


class AdmissionController:
    """Admit-or-reject gate in front of the batcher.

    Parameters:
        queue_limit: Maximum admitted-but-unanswered requests.  At the
            limit, new arrivals are rejected with reason ``queue_full``
            and a retry hint of ``retry_after_s``.
        tenant_rate: Per-tenant sustained requests/s quota (``None``
            disables quotas).
        tenant_burst: Per-tenant burst capacity (defaults to
            ``max(1, tenant_rate)``).
        retry_after_s: The ``queue_full`` retry hint.
    """

    def __init__(
        self,
        queue_limit: int = 64,
        tenant_rate: Optional[float] = None,
        tenant_burst: Optional[float] = None,
        retry_after_s: float = 0.05,
        metrics: Optional[Metrics] = None,
    ):
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        self.queue_limit = int(queue_limit)
        self.tenant_rate = tenant_rate
        self.tenant_burst = (
            tenant_burst
            if tenant_burst is not None
            else (max(1.0, tenant_rate) if tenant_rate is not None else None)
        )
        self.retry_after_s = float(retry_after_s)
        self.metrics = metrics if metrics is not None else METRICS
        self._buckets: Dict[str, TokenBucket] = {}
        self._inflight = 0
        self.admitted = 0
        self.rejected = 0

    # ------------------------------------------------------------------
    @property
    def inflight(self) -> int:
        return self._inflight

    def _reject(self, tenant: str, reason: str, retry_after_s: float) -> None:
        self.rejected += 1
        self.metrics.inc(f"serve.rejected.{reason}")
        self.metrics.inc(f"serve.tenant.{tenant}.rejected")
        raise Rejected(reason, retry_after_s)

    def admit(self, tenant: str, now: Optional[float] = None) -> None:
        """Admit one request or raise :class:`~repro.serve.protocol.Rejected`.

        Every successful admit must be paired with exactly one
        :meth:`release` once the response has been written.
        """
        self.metrics.inc(f"serve.tenant.{tenant}.requests")
        if self._inflight >= self.queue_limit:
            self._reject(tenant, "queue_full", self.retry_after_s)
        if self.tenant_rate is not None:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = self._buckets[tenant] = TokenBucket(
                    self.tenant_rate, self.tenant_burst
                )
            wait = bucket.take(now)
            if wait > 0.0:
                self._reject(tenant, "quota", wait)
        self._inflight += 1
        self.admitted += 1
        self.metrics.inc("serve.admitted")
        self.metrics.set_gauge("serve.queue_depth", self._inflight)

    def release(self) -> None:
        """The paired bookend of :meth:`admit` (response written)."""
        self._inflight = max(0, self._inflight - 1)
        self.metrics.set_gauge("serve.queue_depth", self._inflight)

    def stats(self) -> Dict[str, int]:
        return {
            "inflight": self._inflight,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "queue_limit": self.queue_limit,
        }

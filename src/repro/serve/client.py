"""repro.serve.client — asyncio NDJSON client + HTTP scrape helper.

:class:`ServeClient` pipelines requests over one connection and correlates
out-of-order responses by ``id`` — the shape the load harness's simulated
edge devices use.  :func:`http_get` fetches the scrape plane
(``/healthz``, ``/metrics``, ``/stats``) over a throwaway connection.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Dict, Optional, Tuple

from .protocol import decode_line, encode_line

__all__ = ["ServeClient", "http_get"]


class ServeClient:
    """One pipelined NDJSON connection to a :class:`ReproServer`."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self._pending: Dict[str, asyncio.Future] = {}
        self._ids = itertools.count(1)
        self._closed = False
        self._reader_task = asyncio.get_running_loop().create_task(self._read_loop())

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServeClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    # ------------------------------------------------------------------
    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                obj = decode_line(line)
                future = self._pending.pop(str(obj.get("id", "")), None)
                if future is not None and not future.done():
                    future.set_result(obj)
        except (ConnectionError, ValueError, asyncio.CancelledError):
            pass
        finally:
            self._closed = True
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(ConnectionError("server closed connection"))
            self._pending.clear()

    async def request(self, timeout: Optional[float] = 30.0, **payload) -> dict:
        """Send one request and await its correlated response dict.

        Fills in a fresh ``id`` unless the payload carries one.  Raises
        ``ConnectionError`` if the connection dies first, ``TimeoutError``
        past ``timeout``.
        """
        if self._closed:
            raise ConnectionError("client is closed")
        req_id = str(payload.setdefault("id", f"c{next(self._ids)}"))
        future = asyncio.get_running_loop().create_future()
        self._pending[req_id] = future
        try:
            self._writer.write(encode_line(payload))
            await self._writer.drain()
            return await asyncio.wait_for(future, timeout)
        finally:
            # A timed-out or failed request must not leave its future in
            # the pending map: a late response for a dead id is dropped by
            # the read loop, not delivered to a caller who already gave up.
            self._pending.pop(req_id, None)

    async def close(self) -> None:
        self._closed = True
        self._reader_task.cancel()
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self):
        return self

    async def __aexit__(self, *exc):
        await self.close()
        return False


async def http_get(host: str, port: int, path: str) -> Tuple[int, str]:
    """``(status_code, body)`` of one HTTP/1.0 GET against the scrape plane."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(f"GET {path} HTTP/1.0\r\nHost: {host}\r\n\r\n".encode())
        await writer.drain()
        raw = await reader.read()
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    head, _, body = raw.partition(b"\r\n\r\n")
    status = int(head.split()[1]) if head.split() else 0
    return status, body.decode()

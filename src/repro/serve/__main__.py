"""``python -m repro.serve`` — run the serving layer from a shell."""

from __future__ import annotations

import argparse
import asyncio

from .server import ReproServer, ServeConfig


def _parse_args(argv=None) -> ServeConfig:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="asyncio edge-inference server over the repro engine",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7070)
    parser.add_argument("--max-batch", type=int, default=16)
    parser.add_argument("--max-delay-ms", type=float, default=2.0)
    parser.add_argument("--queue-limit", type=int, default=64)
    parser.add_argument("--tenant-rate", type=float, default=None)
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--default-deadline-ms", type=float, default=1000.0)
    parser.add_argument(
        "--no-fused", action="store_true",
        help="serve nn_predict through the per-layer executors instead of "
             "compiled fused plans (bit-identical either way)",
    )
    parser.add_argument(
        "--fog-nodes", type=int, default=None,
        help="dispatch through an N-node fog topology (default: direct engine)",
    )
    parser.add_argument("--fog-replicas", type=int, default=2)
    parser.add_argument(
        "--fog-fabric", action="store_true",
        help="promote the fog to supervised node *processes* behind "
             "sockets, with heartbeat failure detection, circuit breakers "
             "and restart-with-backoff (requires --fog-nodes)",
    )
    parser.add_argument(
        "--fog-heartbeat-ms", type=float, default=100.0,
        help="fabric failure-detector probe interval",
    )
    parser.add_argument(
        "--fog-miss-budget", type=int, default=3,
        help="consecutive missed heartbeats before a node is suspect",
    )
    parser.add_argument(
        "--fog-hedge-ms", type=float, default=None,
        help="hedge fabric interests to a second replica after this "
             "silence (default: no hedging)",
    )
    parser.add_argument(
        "--no-fog-degrade", action="store_true",
        help="fail fabric interests when every owner is unreachable "
             "instead of degrading to counted in-process execution",
    )
    parser.add_argument(
        "--fog-store-policy", choices=("lru", "costaware"), default="lru",
        help="content-store admission policy per fog node: plain LRU, or "
             "frequency-sketch x recompute-cost admission (TinyLFU-style)",
    )
    parser.add_argument(
        "--fog-store-reverify", type=int, default=1,
        help="re-hash cached results against their pinned digest every "
             "Nth hit (1 = every hit, 0 = never)",
    )
    args = parser.parse_args(argv)
    if args.fog_fabric and not args.fog_nodes:
        parser.error("--fog-fabric requires --fog-nodes")
    return ServeConfig(
        host=args.host,
        port=args.port,
        max_batch=args.max_batch,
        max_delay_ms=args.max_delay_ms,
        queue_limit=args.queue_limit,
        tenant_rate=args.tenant_rate,
        workers=args.workers,
        default_deadline_ms=args.default_deadline_ms,
        fused=not args.no_fused,
        fog_nodes=args.fog_nodes,
        fog_replicas=args.fog_replicas,
        fog_fabric=args.fog_fabric,
        fog_heartbeat_ms=args.fog_heartbeat_ms,
        fog_miss_budget=args.fog_miss_budget,
        fog_hedge_ms=args.fog_hedge_ms,
        fog_degrade_local=not args.no_fog_degrade,
        fog_store_policy=args.fog_store_policy,
        fog_store_reverify=args.fog_store_reverify,
    )


async def _main(config: ServeConfig) -> None:
    async with ReproServer(config) as server:
        host, port = server.address
        print(f"repro.serve listening on {host}:{port} "
              f"(NDJSON data plane + HTTP /healthz /metrics /stats)")
        try:
            await asyncio.Event().wait()
        except asyncio.CancelledError:
            pass


if __name__ == "__main__":
    try:
        asyncio.run(_main(_parse_args()))
    except KeyboardInterrupt:
        pass

"""Energy model for the approximate multipliers.

EvoApprox8B reports post-synthesis energy for each evolved circuit; our
stand-in designs get an analytic model instead: the energy of an 8x8 array
multiplier is dominated by its partial-product bits and the adder cells
that compress them, so each design's energy is the fraction of those
operations it still performs.  The model only needs to be *monotone and
roughly proportional* — Fig. 5 and Table II use it to order designs and to
report the saving achieved at a given accuracy.
"""

from __future__ import annotations

from .multipliers import (
    ApproxMultiplier,
    BrokenArrayMultiplier,
    DRUMMultiplier,
    ExactMultiplier,
    MitchellLogMultiplier,
    ORCompressorMultiplier,
    TruncatedMultiplier,
)

__all__ = ["energy_saving", "relative_energy"]


def _array_ops(bits: int) -> float:
    """Operation count of the exact array: n^2 partial products, each
    feeding roughly one adder cell."""
    return 2.0 * bits * bits


def relative_energy(mult: ApproxMultiplier) -> float:
    """Energy relative to the exact 8x8 multiplier (1.0 = exact)."""
    n = mult.bits
    full = _array_ops(n)

    if isinstance(mult, ExactMultiplier):
        return 1.0

    if isinstance(mult, TruncatedMultiplier):
        # Column i+j survives iff i+j >= cut: count surviving PP bits.
        kept = sum(1 for i in range(n) for j in range(n) if i + j >= mult.cut)
        return 2.0 * kept / full

    if isinstance(mult, BrokenArrayMultiplier):
        # All PPs produced, but low columns lose their adder cells.
        kept_adders = sum(1 for i in range(n) for j in range(n) if i + j >= mult.break_col)
        return (n * n + kept_adders) / full

    if isinstance(mult, ORCompressorMultiplier):
        # All PPs produced; high columns keep adder cells, low columns get
        # OR cells at ~1/4 the energy of an adder cell.
        low = sum(1 for i in range(n) for j in range(n) if i + j < mult.cut)
        high = n * n - low
        return (n * n + high + 0.25 * low) / full

    if isinstance(mult, MitchellLogMultiplier):
        # Two LZCs + two small shifters + one (n + log) adder + antilog
        # shifter: classic estimate ~35-40% of the array energy.
        return 0.40 if mult.compensate else 0.37

    if isinstance(mult, DRUMMultiplier):
        # A k x k core plus leading-one detectors and shifters.
        core = 2.0 * mult.k * mult.k
        overhead = 4.0 * n
        return (core + overhead) / full

    raise TypeError(f"no energy model for {type(mult).__name__}")


def energy_saving(mult: ApproxMultiplier) -> float:
    """Energy saved versus the exact multiplier, in [0, 1)."""
    return max(0.0, 1.0 - relative_energy(mult))

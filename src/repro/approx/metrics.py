"""Exhaustive error characterization of approximate multipliers (Table II)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .energy import energy_saving
from .multipliers import ApproxMultiplier, TABLE2_SET

__all__ = ["MultiplierMetrics", "characterize", "table2"]


@dataclass
class MultiplierMetrics:
    """Error and energy metrics of one multiplier, Table II's columns."""

    name: str
    mre_percent: float  # mean relative error over nonzero exact products
    mae: float  # mean absolute error over all input pairs
    wce: int  # worst-case absolute error
    error_rate: float  # fraction of input pairs with any error
    energy_saving_percent: float

    def row(self) -> str:
        return (
            f"{self.name:<12} {self.mre_percent:7.2f} {self.mae:9.1f} "
            f"{self.energy_saving_percent:7.2f}"
        )


def characterize(mult: ApproxMultiplier) -> MultiplierMetrics:
    """Exhaustively measure a multiplier over all 2^16 operand pairs.

    This mirrors how EvoApprox8B's library metrics are produced: MRE is the
    mean of ``|err| / exact`` over pairs with a nonzero exact product, MAE
    the mean absolute error over all pairs.
    """
    n = 1 << mult.bits
    a, b = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
    exact = (a * b).astype(np.int64)
    approx = mult.lut().astype(np.int64)
    err = approx - exact

    nonzero = exact > 0
    mre = float(np.mean(np.abs(err[nonzero]) / exact[nonzero])) * 100.0
    mae = float(np.mean(np.abs(err)))
    wce = int(np.max(np.abs(err)))
    error_rate = float(np.mean(err != 0))
    return MultiplierMetrics(
        name=mult.name,
        mre_percent=mre,
        mae=mae,
        wce=wce,
        error_rate=error_rate,
        energy_saving_percent=energy_saving(mult) * 100.0,
    )


def table2(mults: Optional[Sequence[ApproxMultiplier]] = None) -> List[MultiplierMetrics]:
    """Characterize the Table II stand-in set, sorted by MRE like the paper."""
    rows = [characterize(m) for m in (mults if mults is not None else TABLE2_SET)]
    rows.sort(key=lambda r: r.mre_percent)
    return rows

"""Approximate computing for DNNs (Section IV).

An EvoApprox-style library of 8-bit approximate multipliers
(:mod:`repro.approx.multipliers`), exhaustive error characterization
(:mod:`repro.approx.metrics`, reproducing the MRE/MAE columns of Table II),
an energy model (:mod:`repro.approx.energy`), and the LUT-backed behavioural
simulation of approximate DNN layers (:mod:`repro.approx.simulate`) that
plays the role of the GPU-accelerated ProxSim framework [27].

The paper's Table II lists 10 multipliers drawn from EvoApprox8B [28] with
MRE from 0.03% to 19.45% and energy savings from 0.02% to 68.08%.
EvoApprox's evolved netlists are not redistributable here, so
:data:`TABLE2_SET` instantiates 10 hand-designed multipliers from classical
approximation families (truncation, broken-array, Mitchell logarithmic,
OR-compressor) spanning the same error/energy ladder — same code path, same
monotone error-vs-energy trade-off.
"""

from .multipliers import (
    ApproxMultiplier,
    ExactMultiplier,
    TruncatedMultiplier,
    BrokenArrayMultiplier,
    MitchellLogMultiplier,
    ORCompressorMultiplier,
    DRUMMultiplier,
    TABLE2_SET,
)
from .metrics import characterize, MultiplierMetrics, table2
from .energy import energy_saving
from .simulate import signed_lut, approx_matmul, approx_conv2d

__all__ = [
    "ApproxMultiplier",
    "ExactMultiplier",
    "TruncatedMultiplier",
    "BrokenArrayMultiplier",
    "MitchellLogMultiplier",
    "ORCompressorMultiplier",
    "DRUMMultiplier",
    "TABLE2_SET",
    "characterize",
    "MultiplierMetrics",
    "table2",
    "energy_saving",
    "signed_lut",
    "approx_matmul",
    "approx_conv2d",
]

"""LUT-backed behavioural simulation of approximate arithmetic (ProxSim [27]).

ProxSim runs approximate-multiplier behavioural models inside convolutional
and fully connected layers on a GPU; here the same thing is done with numpy
fancy indexing over the multiplier's exhaustive 256x256 table — bit-exact
with the circuit, "slow but correct".

DNN quantization produces *signed* int8 operands while the multiplier
designs are unsigned cores; :func:`signed_lut` wraps a core in the
standard sign-magnitude envelope (the approach ProxSim-style flows use for
unsigned EvoApprox cores).

Execution goes through :mod:`repro.engine`: tables are memoized per core in
the process-wide kernel registry, and the tiled contraction is the engine's
:func:`repro.engine.kernels.lut_matmul` — the same kernel the other
backends use.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..engine.approx_backend import get_signed_lut
from ..engine.kernels import lut_matmul
from ..engine.observe import TRACER
from .multipliers import ApproxMultiplier

__all__ = ["signed_lut", "approx_matmul", "approx_conv2d"]


def signed_lut(mult: ApproxMultiplier) -> np.ndarray:
    """Signed behaviour table: ``lut[a + 128, b + 128] ~ a * b`` for int8.

    The unsigned core multiplies magnitudes; the product sign is the XOR of
    the operand signs (the sign-magnitude envelope of Section V's
    discussion — floats and most approximate cores work this way).

    Memoized per core in the engine's kernel registry: repeated simulations
    of the same multiplier share one table.
    """
    return get_signed_lut(mult)


def approx_matmul(
    a: np.ndarray,
    b: np.ndarray,
    lut: Optional[np.ndarray],
    chunk: int = 64,
    workers: Optional[int] = None,
    fault_plan=None,
) -> np.ndarray:
    """``a @ b`` for int8-valued arrays through a signed behaviour table.

    ``a`` is (M, K), ``b`` is (K, N); accumulation is exact int64 (the
    int32 accumulators of real accelerators never saturate at these sizes).
    ``lut=None`` gives the exact product (the quantized baseline).

    ``workers`` > 1 shards the rows of ``a`` across a process pool
    (:func:`repro.engine.parallel.shard_lut_matmul`); per-row integer
    accumulation is exact, so the sharded product is bit-identical to the
    in-process kernel.  Worth it only for large M — each call pays the
    pool spawn cost.

    ``fault_plan`` (a :class:`repro.engine.faults.FaultPlan` with a
    non-zero ``lut_rate``) runs the contraction through a deterministically
    bit-flipped copy of the behaviour table — stuck-at faults in the
    multiplier array, on top of its designed approximation error.
    """
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    if lut is None:
        return a @ b
    if fault_plan is not None and fault_plan.lut_rate > 0.0:
        lut = fault_plan.corrupt_table("approx.simulate", "lut", lut)
    with TRACER.span(
        "approx.matmul", shape=(a.shape[0], a.shape[1], b.shape[1]), workers=workers
    ):
        if workers is not None and workers > 1:
            from ..engine.parallel import shard_lut_matmul

            return shard_lut_matmul(lut, a + 128, b + 128, workers=workers, chunk=chunk)
        return lut_matmul(lut, a + 128, b + 128, chunk=chunk)


def _im2col(x: np.ndarray, kh: int, kw: int, stride: int, pad: int):
    """(N, C, H, W) -> (N*OH*OW, C*KH*KW) patch matrix."""
    n, c, h, w = x.shape
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    oh = (h + 2 * pad - kh) // stride + 1
    ow = (w + 2 * pad - kw) // stride + 1
    shape = (n, c, kh, kw, oh, ow)
    strides = (
        x.strides[0],
        x.strides[1],
        x.strides[2],
        x.strides[3],
        x.strides[2] * stride,
        x.strides[3] * stride,
    )
    patches = np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)
    cols = patches.transpose(0, 4, 5, 1, 2, 3).reshape(n * oh * ow, c * kh * kw)
    return np.ascontiguousarray(cols), oh, ow


def approx_conv2d(
    x: np.ndarray,
    w: np.ndarray,
    lut: Optional[np.ndarray],
    stride: int = 1,
    pad: int = 0,
    workers: Optional[int] = None,
    fault_plan=None,
) -> np.ndarray:
    """2-D convolution of int8-valued tensors through the behaviour table.

    ``x``: (N, C, H, W) activations; ``w``: (F, C, KH, KW) filters.
    Returns (N, F, OH, OW) int64 accumulations.  ``workers`` shards the
    im2col patch matrix's rows across processes (see
    :func:`approx_matmul`) — bit-identical to the single-process result.
    """
    n = x.shape[0]
    f, c, kh, kw = w.shape
    with TRACER.span("approx.conv2d", shape=list(x.shape), filters=f):
        cols, oh, ow = _im2col(x, kh, kw, stride, pad)
        wmat = w.reshape(f, c * kh * kw).T  # (CKK, F)
        out = approx_matmul(cols, wmat, lut, workers=workers, fault_plan=fault_plan)
        return out.reshape(n, oh, ow, f).transpose(0, 3, 1, 2)

"""8-bit approximate multiplier designs.

Every multiplier is a deterministic function on unsigned 8-bit operands,
implemented with vectorized numpy bit manipulation so the full 256 x 256
behaviour table (the LUT that drives DNN simulation) is cheap to build.

Families:

* :class:`TruncatedMultiplier` — drop the ``k`` least-significant
  partial-product columns; the classic area/energy lever.
* :class:`BrokenArrayMultiplier` — omit carry propagation out of the low
  ``k`` columns (errors are smaller than truncation for the same k).
* :class:`MitchellLogMultiplier` — add the logarithms (piecewise-linear
  log2 approximation); large energy saving, ~4-11% MRE depending on an
  optional error-compensation term.
* :class:`ORCompressorMultiplier` — replace low-column compressors with OR
  gates (an approximate-compressor design).
* :class:`DRUMMultiplier` — dynamic range selection of the top ``k`` bits
  with unbiasing, very low MRE for its energy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

__all__ = [
    "ApproxMultiplier",
    "ExactMultiplier",
    "TruncatedMultiplier",
    "BrokenArrayMultiplier",
    "MitchellLogMultiplier",
    "ORCompressorMultiplier",
    "DRUMMultiplier",
    "TABLE2_SET",
]


class ApproxMultiplier:
    """Base class: an unsigned ``bits x bits -> 2*bits`` multiplier."""

    bits: int = 8
    name: str = "abstract"

    def multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Vectorized approximate product of unsigned operand arrays."""
        raise NotImplementedError

    def lut(self) -> np.ndarray:
        """The full behaviour table: ``lut[a, b]`` for all operand pairs."""
        n = 1 << self.bits
        a, b = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
        return self.multiply(a.astype(np.int64), b.astype(np.int64))

    def __call__(self, a, b):
        return self.multiply(np.asarray(a, dtype=np.int64), np.asarray(b, dtype=np.int64))

    def __repr__(self):
        return f"{type(self).__name__}({self.name})"


@dataclass
class ExactMultiplier(ApproxMultiplier):
    bits: int = 8

    @property
    def name(self):
        return "exact"

    def multiply(self, a, b):
        return a * b


@dataclass
class TruncatedMultiplier(ApproxMultiplier):
    """Drop partial products in columns below ``cut``."""

    cut: int
    bits: int = 8

    @property
    def name(self):
        return f"trunc{self.cut}"

    def multiply(self, a, b):
        total = np.zeros_like(a * b)
        for j in range(self.bits):
            pp = ((b >> j) & 1) * a  # row j, weight 2^j: bits i+j
            # Keep only bit positions >= cut: mask low (cut - j) bits of a.
            drop = max(0, self.cut - j)
            pp = (pp >> drop) << drop
            total = total + (pp << j)
        return total


@dataclass
class BrokenArrayMultiplier(ApproxMultiplier):
    """Omit the carries crossing out of the low ``break_col`` columns.

    Implemented as: exact sum of the high part, plus a carry-free (bitwise
    XOR-accumulated) sum of the low part.
    """

    break_col: int
    bits: int = 8

    @property
    def name(self):
        return f"broken{self.break_col}"

    def multiply(self, a, b):
        exact = a * b
        high = (exact >> self.break_col) << self.break_col
        # Carry-free accumulation of the low columns.
        low = np.zeros_like(exact)
        for j in range(self.bits):
            pp = (((b >> j) & 1) * a) << j
            low = low ^ pp
        low = low & ((1 << self.break_col) - 1)
        # The high part above already contains the low columns' carries;
        # remove them by recomputing the high part from truncated rows.
        total = np.zeros_like(exact)
        for j in range(self.bits):
            pp = (((b >> j) & 1) * a) << j
            total = total + ((pp >> self.break_col) << self.break_col)
        return total + low


@dataclass
class MitchellLogMultiplier(ApproxMultiplier):
    """Mitchell's logarithmic multiplier: ``2**(log~(a) + log~(b))``.

    ``log~(x) = k + frac`` where ``k`` is the leading-one position and
    ``frac`` the mantissa bits below it (piecewise-linear log2).  With
    ``compensate`` a constant correction shrinks the always-negative error.
    """

    compensate: bool = False
    bits: int = 8

    @property
    def name(self):
        return "mitchell+c" if self.compensate else "mitchell"

    def multiply(self, a, b):
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        out = np.zeros(np.broadcast(a, b).shape, dtype=np.int64)
        nz = (a > 0) & (b > 0)
        if not np.any(nz):
            return out
        av, bv = np.broadcast_to(a, out.shape)[nz], np.broadcast_to(b, out.shape)[nz]
        F = 12  # fixed-point fraction bits of the log domain

        def log_approx(x):
            k = np.floor(np.log2(x)).astype(np.int64)  # leading-one index
            frac = ((x - (1 << k).astype(np.int64)) << F) >> k
            return (k << F) + frac

        s = log_approx(av) + log_approx(bv)
        if self.compensate:
            s = s + (1 << (F - 3))  # +0.125: halves the mean |error|
        k = s >> F
        frac = s & ((1 << F) - 1)
        # antilog: (1 + frac) * 2^k on the fixed-point grid.
        out[nz] = (((1 << F) + frac) << k) >> F
        return out


@dataclass
class ORCompressorMultiplier(ApproxMultiplier):
    """Approximate compressors: OR instead of ADD in columns below ``cut``."""

    cut: int
    bits: int = 8

    @property
    def name(self):
        return f"orcomp{self.cut}"

    def multiply(self, a, b):
        total = np.zeros_like(a * b)
        low = np.zeros_like(total)
        for j in range(self.bits):
            pp = (((b >> j) & 1) * a) << j
            low = low | (pp & ((1 << self.cut) - 1))
            total = total + ((pp >> self.cut) << self.cut)
        return total + low


@dataclass
class DRUMMultiplier(ApproxMultiplier):
    """Dynamic-range unbiased multiplier: multiply the top ``k`` bits only.

    Each operand is reduced to its ``k`` leading bits (from the leading
    one), with the bit below the kept window forced to 1 as the unbiasing
    term, then multiplied exactly and re-scaled.
    """

    k: int = 4
    bits: int = 8

    @property
    def name(self):
        return f"drum{self.k}"

    def multiply(self, a, b):
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        out_shape = np.broadcast(a, b).shape
        a = np.broadcast_to(a, out_shape).copy()
        b = np.broadcast_to(b, out_shape).copy()

        def reduce(x):
            pos = np.where(x > 0, np.floor(np.log2(np.maximum(x, 1))).astype(np.int64), 0)
            shift = np.maximum(pos - (self.k - 1), 0)
            kept = (x >> shift) << shift
            # Unbias: set the bit just below the kept window (when truncating).
            unbias = np.where(shift > 0, 1 << np.maximum(shift - 1, 0), 0)
            return kept | unbias

        return reduce(a) * reduce(b)


def _build_table2_set() -> List[ApproxMultiplier]:
    """Ten multipliers laddering the Table II error/energy range.

    Measured (exhaustive) MRE runs 0.08% .. 25% with energy saving rising
    5% .. 77% — the same near-monotone trade-off as the paper's ten
    EvoApprox picks (MRE 0.03% .. 19.45%, saving 0.02% .. 68%).  The
    paper's multiplier id each entry stands in for is noted.
    """
    return [
        TruncatedMultiplier(cut=2),   # MRE ~0.08, save ~5   (paper's 320)
        TruncatedMultiplier(cut=4),   # ~0.56, ~16           (114)
        TruncatedMultiplier(cut=5),   # ~1.26, ~23           (302)
        TruncatedMultiplier(cut=6),   # ~2.64, ~33           (231)
        DRUMMultiplier(k=4),          # ~3.04, ~50           (62)
        TruncatedMultiplier(cut=7),   # ~5.2,  ~44           (163)
        DRUMMultiplier(k=3),          # ~6.1,  ~61           (435)
        TruncatedMultiplier(cut=8),   # ~9.8,  ~56           (24)
        TruncatedMultiplier(cut=9),   # ~16.3, ~67           (195)
        TruncatedMultiplier(cut=10),  # ~25.5, ~77           (280)
    ]


#: The stand-ins for Table II's ten EvoApprox multipliers, error-ordered.
TABLE2_SET: List[ApproxMultiplier] = _build_table2_set()

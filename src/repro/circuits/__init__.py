"""Gate-level netlists: the substrate for hardware-cost comparisons.

Sections III and V of the paper argue about *circuits* — partial-product
arrays, carry chains, ALM packing, posit decoders.  This package provides a
small but complete combinational-netlist framework: a builder DSL
(:class:`Circuit`), an event-free evaluator, reusable arithmetic components
(adders, multipliers, shifters, leading-zero counters, two's-complement
units), and cost models (gate counts and a LUT/ALM estimate matching the
FPGA view of Section III).

>>> from repro.circuits import Circuit
>>> c = Circuit("maj3")
>>> a, b, d = c.inputs("a", "b", "d")
>>> c.outputs(maj=c.maj(a, b, d))
>>> c.evaluate(a=1, b=0, d=1)["maj"]
1
"""

from .netlist import Circuit, Net, Gate, GateKind
from .components import (
    ripple_carry_adder,
    carry_save_row,
    array_multiplier,
    twos_complement,
    leading_zero_counter,
    leading_sign_counter,
    barrel_shifter,
    equality_comparator,
    mux_word,
)
from .components import conditional_negate
from .cost import CostReport, gate_cost, lut_cost, alm_estimate, carry_positions, cost_report
from .emit import to_verilog

__all__ = [
    "Circuit",
    "Net",
    "Gate",
    "GateKind",
    "ripple_carry_adder",
    "carry_save_row",
    "array_multiplier",
    "twos_complement",
    "leading_zero_counter",
    "leading_sign_counter",
    "barrel_shifter",
    "equality_comparator",
    "mux_word",
    "conditional_negate",
    "CostReport",
    "gate_cost",
    "lut_cost",
    "alm_estimate",
    "carry_positions",
    "cost_report",
    "to_verilog",
]

"""Cost models for gate-level circuits.

Two views of cost, matching the paper's two hardware contexts:

* **ASIC-ish gate counts** — raw primitive gates, with XOR weighted heavier
  than AND/OR (a common standard-cell area proxy).
* **FPGA LUT/ALM estimates** — modern FPGAs are built from 6-input LUTs
  (Section II: "any technique that exploits pre-computed tables of 64
  entries will be implemented extremely efficiently"), fracturable into two
  smaller functions per ALM, plus dedicated carry chains.  We estimate LUT
  demand by greedily clustering the gate DAG into <=6-input cones, and count
  full-adder/MAJ pairs as carry-chain positions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from .netlist import Circuit, Gate, GateKind

__all__ = ["CostReport", "gate_cost", "lut_cost", "alm_estimate"]

#: Relative area weights of primitive gates (NAND2-equivalents).
_GATE_WEIGHT = {
    GateKind.CONST0: 0.0,
    GateKind.CONST1: 0.0,
    GateKind.BUF: 0.0,
    GateKind.NOT: 0.5,
    GateKind.AND: 1.0,
    GateKind.OR: 1.0,
    GateKind.NAND: 1.0,
    GateKind.NOR: 1.0,
    GateKind.XOR: 2.0,
    GateKind.XNOR: 2.0,
    GateKind.MAJ: 2.0,
    GateKind.MUX: 2.0,
}


@dataclass
class CostReport:
    """Aggregate cost of a circuit under both cost models."""

    name: str
    gates: int
    gate_area: float
    depth: int
    luts: int
    alms: float
    carry_positions: int
    by_kind: Dict[str, int] = field(default_factory=dict)

    def __str__(self):
        return (
            f"{self.name}: {self.gates} gates (area {self.gate_area:.1f}), "
            f"depth {self.depth}, ~{self.luts} LUT6 (~{self.alms:.1f} ALMs, "
            f"{self.carry_positions} carry positions)"
        )


def gate_cost(circuit: Circuit) -> float:
    """NAND2-equivalent area of the circuit."""
    total = 0.0
    for gate in circuit.gates:
        weight = _GATE_WEIGHT[gate.kind]
        # Wide gates decompose into a tree of 2-input gates.
        fan = max(2, len(gate.inputs))
        total += weight * max(1, fan - 1)
    return total


def _gate_fanin_cones(circuit: Circuit) -> List[Set[int]]:
    """Greedy clustering of gates into <=6-input LUT cones.

    Walks the netlist in topological order; each gate either merges into the
    cone of one of its single-fanout predecessors (if the merged support
    stays within 6 inputs) or opens a fresh cone.  This is a standard
    fast technology-mapping approximation (optimal mapping is the job of
    tools like the Fractal Synthesis flow of Section III).
    """
    driver: Dict[int, int] = {g.output: i for i, g in enumerate(circuit.gates)}
    fanout: Dict[int, int] = {}
    for g in circuit.gates:
        for i in g.inputs:
            fanout[i] = fanout.get(i, 0) + 1
    for net in circuit.output_nets.values():
        fanout[net.index] = fanout.get(net.index, 0) + 1

    cone_of: Dict[int, int] = {}  # gate index -> cone id
    supports: List[Set[int]] = []  # cone id -> set of input nets
    members: List[Set[int]] = []  # cone id -> gate indices

    combinational = {
        i
        for i, g in enumerate(circuit.gates)
        if g.kind not in (GateKind.CONST0, GateKind.CONST1)
    }

    def _mergeable_cones(gate: Gate):
        """Cones of single-fanout predecessors, i.e. merge candidates."""
        cones = []
        for net in gate.inputs:
            src = driver.get(net)
            if src is not None and src in cone_of and fanout.get(net, 0) == 1:
                cones.append(cone_of[src])
        return cones

    for idx, gate in enumerate(circuit.gates):
        if idx not in combinational:
            continue
        merged = False
        for cone in _mergeable_cones(gate):
            # Nets absorbed by this cone disappear; the others stay inputs.
            extra = {
                net
                for net in gate.inputs
                if not (
                    driver.get(net) in cone_of
                    and cone_of.get(driver.get(net)) == cone
                    and fanout.get(net, 0) == 1
                )
            }
            trial = supports[cone] | extra
            if len(trial) <= 6:
                supports[cone] = trial
                members[cone].add(idx)
                cone_of[idx] = cone
                merged = True
                break
        if not merged:
            cone_id = len(supports)
            supports.append(set(gate.inputs))
            members.append({idx})
            cone_of[idx] = cone_id
    return supports


def lut_cost(circuit: Circuit) -> int:
    """Estimated number of 6-input LUTs after greedy cone clustering."""
    return len(_gate_fanin_cones(circuit))


def carry_positions(circuit: Circuit) -> int:
    """Number of MAJ gates — each is one position of a hardware carry chain."""
    return sum(1 for g in circuit.gates if g.kind is GateKind.MAJ)


def alm_estimate(circuit: Circuit) -> float:
    """Estimated ALM count: an Intel-style ALM packs ~2 independent LUT4s
    or one LUT6, and one full-adder pair per ALM on the carry chain."""
    luts = lut_cost(circuit)
    chain = carry_positions(circuit)
    # Carry positions come in pairs per ALM; LUT logic packs ~1.6 small
    # functions per ALM on average (fracturable LUT).
    return max(luts / 1.6, chain / 2.0)


def cost_report(circuit: Circuit) -> CostReport:
    """Full cost summary of a circuit."""
    return CostReport(
        name=circuit.name,
        gates=len(circuit.gates),
        gate_area=gate_cost(circuit),
        depth=circuit.depth(),
        luts=lut_cost(circuit),
        alms=alm_estimate(circuit),
        carry_positions=carry_positions(circuit),
        by_kind={k.value: v for k, v in circuit.gate_count().items()},
    )

"""Verilog emission for gate-level circuits.

FloPoCo's end product is synthesizable HDL; this emitter gives every
:class:`repro.circuits.Circuit` — including the verified posit and float
datapaths of :mod:`repro.hwcost` — a structural Verilog-2001 rendering:
one wire per net, one continuous assignment per gate, ports named after
the circuit's buses.

The emission is deterministic (net order), so the output is diff-stable
across runs — the property hardware teams need for CI on generated RTL.
"""

from __future__ import annotations

import re
from typing import Dict, List

from .netlist import Circuit, GateKind

__all__ = ["to_verilog"]

_BINARY_OP = {
    GateKind.AND: "&",
    GateKind.OR: "|",
    GateKind.XOR: "^",
}


def _sanitize(name: str) -> str:
    """Make a net/port name Verilog-legal (buses become name[i] -> name_i)."""
    out = re.sub(r"[^A-Za-z0-9_]", "_", name)
    if not out or not (out[0].isalpha() or out[0] == "_"):
        out = "n_" + out
    return out


def _bus_groups(names: List[str]) -> Dict[str, int]:
    """Detect LSB-first buses: {"a": width} for names like a[0..w-1]."""
    buses: Dict[str, List[int]] = {}
    for name in names:
        m = re.fullmatch(r"(.+)\[(\d+)\]", name)
        if m:
            buses.setdefault(m.group(1), []).append(int(m.group(2)))
    return {
        bus: max(idx) + 1
        for bus, idx in buses.items()
        if sorted(idx) == list(range(max(idx) + 1))
    }


def to_verilog(circuit: Circuit, module_name: str = None) -> str:
    """Render the circuit as a structural Verilog module."""
    module = _sanitize(module_name or circuit.name)

    input_names = [n.name for n in circuit.input_nets]
    output_names = list(circuit.output_nets)
    in_buses = _bus_groups(input_names)
    out_buses = _bus_groups(output_names)

    def net_ref(index: int) -> str:
        return f"n{index}"

    # Port declarations.
    ports: List[str] = []
    decls: List[str] = []
    for bus, width in in_buses.items():
        ports.append(_sanitize(bus))
        decls.append(f"  input  [{width - 1}:0] {_sanitize(bus)};")
    for name in input_names:
        if not re.fullmatch(r"(.+)\[(\d+)\]", name):
            ports.append(_sanitize(name))
            decls.append(f"  input  {_sanitize(name)};")
    for bus, width in out_buses.items():
        ports.append(_sanitize(bus))
        decls.append(f"  output [{width - 1}:0] {_sanitize(bus)};")
    for name in output_names:
        if not re.fullmatch(r"(.+)\[(\d+)\]", name):
            ports.append(_sanitize(name))
            decls.append(f"  output {_sanitize(name)};")

    lines = [f"module {module} ({', '.join(ports)});"]
    lines.extend(decls)

    # Wires: one per internal net that a gate drives.
    driven = [g.output for g in circuit.gates]
    if driven:
        lines.append("  wire " + ", ".join(net_ref(i) for i in driven) + ";")

    # Bind input nets to port bits.
    for net in circuit.input_nets:
        m = re.fullmatch(r"(.+)\[(\d+)\]", net.name)
        src = f"{_sanitize(m.group(1))}[{m.group(2)}]" if m else _sanitize(net.name)
        lines.append(f"  wire n{net.index} = {src};")

    # One assignment per gate, in construction (topological) order.
    for gate in circuit.gates:
        out = net_ref(gate.output)
        ins = [net_ref(i) for i in gate.inputs]
        k = gate.kind
        if k is GateKind.CONST0:
            rhs = "1'b0"
        elif k is GateKind.CONST1:
            rhs = "1'b1"
        elif k is GateKind.BUF:
            rhs = ins[0]
        elif k is GateKind.NOT:
            rhs = f"~{ins[0]}"
        elif k in _BINARY_OP:
            rhs = f" {_BINARY_OP[k]} ".join(ins)
        elif k is GateKind.NAND:
            rhs = "~(" + " & ".join(ins) + ")"
        elif k is GateKind.NOR:
            rhs = "~(" + " | ".join(ins) + ")"
        elif k is GateKind.XNOR:
            rhs = "~(" + " ^ ".join(ins) + ")"
        elif k is GateKind.MAJ:
            a, b, d = ins
            rhs = f"({a} & {b}) | ({a} & {d}) | ({b} & {d})"
        elif k is GateKind.MUX:
            s, w0, w1 = ins
            rhs = f"{s} ? {w1} : {w0}"
        else:  # pragma: no cover
            raise ValueError(f"cannot emit gate kind {k}")
        lines.append(f"  assign {out} = {rhs};")

    # Bind outputs.
    for name, net in circuit.output_nets.items():
        m = re.fullmatch(r"(.+)\[(\d+)\]", name)
        dst = f"{_sanitize(m.group(1))}[{m.group(2)}]" if m else _sanitize(name)
        lines.append(f"  assign {dst} = {net_ref(net.index)};")

    lines.append("endmodule")
    return "\n".join(lines) + "\n"

"""Reusable arithmetic components for gate-level circuits.

These are the building blocks that posit and float datapaths share: ripple
adders (which FPGAs implement in fast carry chains, per Section II's
target-specific optimizations), array multipliers (the partial-product view
of Fig. 3), barrel shifters, and the count-leading-zeros/signs units that
dominate posit decode cost.

All word-level helpers take and return LSB-first lists of nets.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .netlist import Circuit, Net

__all__ = [
    "ripple_carry_adder",
    "carry_save_row",
    "array_multiplier",
    "twos_complement",
    "leading_zero_counter",
    "leading_sign_counter",
    "barrel_shifter",
    "equality_comparator",
    "mux_word",
]


def ripple_carry_adder(
    c: Circuit,
    a: Sequence[Net],
    b: Sequence[Net],
    cin: Optional[Net] = None,
) -> Tuple[List[Net], Net]:
    """Add two equal-width words; return ``(sum_bits, carry_out)``."""
    if len(a) != len(b):
        raise ValueError("ripple_carry_adder needs equal widths")
    carry = cin if cin is not None else c.const(0)
    sums: List[Net] = []
    for ai, bi in zip(a, b):
        s, carry = c.full_adder(ai, bi, carry)
        sums.append(s)
    return sums, carry


def carry_save_row(
    c: Circuit, a: Sequence[Net], b: Sequence[Net], d: Sequence[Net]
) -> Tuple[List[Net], List[Net]]:
    """3:2 compress three words into ``(sum_word, carry_word)``.

    ``carry_word`` is already shifted: its bit ``i`` has weight ``2**(i+1)``.
    """
    width = max(len(a), len(b), len(d))
    zero = c.const(0)

    def get(w, i):
        return w[i] if i < len(w) else zero

    sums, carries = [], []
    for i in range(width):
        s, cy = c.full_adder(get(a, i), get(b, i), get(d, i))
        sums.append(s)
        carries.append(cy)
    return sums, carries


def array_multiplier(
    c: Circuit, a: Sequence[Net], b: Sequence[Net]
) -> List[Net]:
    """Plain pencil-and-paper unsigned multiplier (Fig. 3's structure).

    Generates all partial products ``a_i AND b_j`` and reduces them with
    ripple adders, one row at a time.  Deliberately naive: this is the
    baseline the regularized mapping of Fig. 4 improves on.
    """
    wa, wb = len(a), len(b)
    zero = c.const(0)
    acc: List[Net] = [zero] * (wa + wb)
    for j in range(wb):
        row = [c.and_(a[i], b[j]) for i in range(wa)]
        carry = zero
        for i in range(wa):
            s, carry = c.full_adder(acc[j + i], row[i], carry)
            acc[j + i] = s
        # Row j only writes positions j .. j+wa, so acc[j+wa] is still the
        # constant zero here and the carry-out can simply take its place.
        acc[j + wa] = carry
    return acc


def twos_complement(c: Circuit, a: Sequence[Net]) -> List[Net]:
    """Return ``-a`` as a same-width word (two's complement: invert, +1)."""
    inverted = [c.not_(x) for x in a]
    one = c.const(1)
    zero_word = [c.const(0)] * len(a)
    zero_word[0] = one
    total, _ = ripple_carry_adder(c, inverted, zero_word)
    return total


def conditional_negate(c: Circuit, a: Sequence[Net], neg: Net) -> List[Net]:
    """Return ``neg ? -a : a`` — XOR with the sign then add it back.

    This is the 2's-complement "decode" posits use instead of the
    sign/magnitude split of IEEE floats.
    """
    flipped = [c.xor(x, neg) for x in a]
    addend = [c.const(0)] * len(a)
    addend[0] = neg
    total, _ = ripple_carry_adder(c, flipped, addend)
    return total


def leading_zero_counter(c: Circuit, a: Sequence[Net]) -> List[Net]:
    """Count leading zeros of an MSB-last word (LSB-first as usual).

    Returns an LSB-first count word of ``ceil(log2(len(a)+1))`` bits.
    Structured as a priority scan — O(n log n) gates, O(n) depth.
    """
    n = len(a)
    count_width = max(1, n.bit_length())
    # Priority mux chain: the mux closest to the output corresponds to the
    # MSB, so a set MSB overrides everything scanned after it.
    result = _constant_word(c, n, count_width)
    for idx in range(n - 1, -1, -1):  # idx = distance from the MSB
        bit_net = a[n - 1 - idx]
        candidate = _constant_word(c, idx, count_width)
        result = mux_word(c, bit_net, result, candidate)
    return result


def leading_sign_counter(c: Circuit, a: Sequence[Net]) -> List[Net]:
    """Count the run of copies of the MSB ("count leading zeros or ones").

    This is the posit regime decoder; the paper notes the equivalent OR tree
    "takes no more than six logic levels even for 64-bit posits".
    """
    msb = a[-1]
    normalized = [c.xor(x, msb) for x in a]
    return leading_zero_counter(c, normalized)


def _constant_word(c: Circuit, value: int, width: int) -> List[Net]:
    return [c.const((value >> i) & 1) for i in range(width)]


def mux_word(c: Circuit, select: Net, when0: Sequence[Net], when1: Sequence[Net]) -> List[Net]:
    """Word-wide 2:1 mux."""
    if len(when0) != len(when1):
        raise ValueError("mux_word needs equal widths")
    return [c.mux(select, a, b) for a, b in zip(when0, when1)]


def barrel_shifter(
    c: Circuit,
    a: Sequence[Net],
    amount: Sequence[Net],
    left: bool = False,
    arithmetic: bool = False,
) -> List[Net]:
    """Logarithmic barrel shifter: shift ``a`` by the binary ``amount``.

    ``arithmetic`` replicates the MSB when shifting right (the
    sign-preserving shift posit alignment needs).
    """
    word = list(a)
    fill_right = word[-1] if arithmetic else c.const(0)
    for stage, sel in enumerate(amount):
        dist = 1 << stage
        if left:
            shifted = [c.const(0)] * min(dist, len(word)) + word[: max(0, len(word) - dist)]
        else:
            shifted = word[dist:] + [fill_right] * min(dist, len(word))
        word = mux_word(c, sel, word, shifted)
    return word


def equality_comparator(c: Circuit, a: Sequence[Net], b: Sequence[Net]) -> Net:
    """Single net that is 1 iff the words are bit-identical."""
    if len(a) != len(b):
        raise ValueError("equality_comparator needs equal widths")
    bits = [c.xnor(x, y) for x, y in zip(a, b)]
    return bits[0] if len(bits) == 1 else c.and_(*bits)

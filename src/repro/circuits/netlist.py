"""Combinational netlist builder and evaluator."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["GateKind", "Net", "Gate", "Circuit"]


class GateKind(enum.Enum):
    """Primitive gate types.

    ``CONST0``/``CONST1`` are sourceless constants; everything else takes
    the listed number of inputs.  ``MAJ`` (3-input majority) is the carry
    function of a full adder and maps to a single level of FPGA carry logic.
    """

    CONST0 = "const0"
    CONST1 = "const1"
    BUF = "buf"
    NOT = "not"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NAND = "nand"
    NOR = "nor"
    XNOR = "xnor"
    MAJ = "maj"
    MUX = "mux"  # inputs: (select, when0, when1)


_ARITY = {
    GateKind.CONST0: 0,
    GateKind.CONST1: 0,
    GateKind.BUF: 1,
    GateKind.NOT: 1,
    GateKind.MAJ: 3,
    GateKind.MUX: 3,
}


@dataclass(frozen=True)
class Net:
    """A single wire, identified by index within its circuit."""

    circuit_id: int
    index: int
    name: str = ""

    def __repr__(self):
        return f"Net({self.name or self.index})"


@dataclass
class Gate:
    """A gate instance: ``kind`` driving ``output`` from ``inputs``."""

    kind: GateKind
    inputs: Tuple[int, ...]
    output: int


class Circuit:
    """A mutable combinational circuit under construction.

    Nets are created by :meth:`new_net`/:meth:`inputs`; gates by the logical
    operator helpers (:meth:`and_`, :meth:`xor`, ...).  The circuit is a DAG
    by construction — each gate drives a fresh net.
    """

    _next_id = 0

    def __init__(self, name: str = "circuit"):
        self.name = name
        self.id = Circuit._next_id
        Circuit._next_id += 1
        self._nets: List[str] = []
        self.gates: List[Gate] = []
        self.input_nets: List[Net] = []
        self.output_nets: Dict[str, Net] = {}
        self._const_cache: Dict[GateKind, Net] = {}

    # ------------------------------------------------------------------
    # Net and port management
    # ------------------------------------------------------------------
    def new_net(self, name: str = "") -> Net:
        net = Net(self.id, len(self._nets), name)
        self._nets.append(name)
        return net

    def inputs(self, *names: str) -> List[Net]:
        """Declare primary inputs (order defines the evaluation interface)."""
        nets = [self.new_net(n) for n in names]
        self.input_nets.extend(nets)
        return nets if len(nets) != 1 else nets  # always a list

    def input_bus(self, name: str, width: int) -> List[Net]:
        """Declare a ``width``-bit input bus, LSB first: ``name[0] .. name[w-1]``."""
        return self.inputs(*(f"{name}[{i}]" for i in range(width)))

    def outputs(self, **named: Net) -> None:
        """Declare named primary outputs."""
        for name, net in named.items():
            self._check(net)
            self.output_nets[name] = net

    def output_bus(self, name: str, nets: Sequence[Net]) -> None:
        """Declare an output bus, LSB first."""
        for i, net in enumerate(nets):
            self.outputs(**{f"{name}[{i}]": net})

    def _check(self, net: Net):
        if net.circuit_id != self.id:
            raise ValueError(f"net {net} belongs to a different circuit")

    # ------------------------------------------------------------------
    # Gate constructors
    # ------------------------------------------------------------------
    def _gate(self, kind: GateKind, *ins: Net, name: str = "") -> Net:
        for n in ins:
            self._check(n)
        arity = _ARITY.get(kind)
        if arity is not None and len(ins) != arity:
            raise ValueError(f"{kind.value} takes {arity} inputs, got {len(ins)}")
        if arity is None and len(ins) < 2:
            raise ValueError(f"{kind.value} takes at least 2 inputs")
        out = self.new_net(name)
        self.gates.append(Gate(kind, tuple(n.index for n in ins), out.index))
        return out

    def const(self, value: int) -> Net:
        kind = GateKind.CONST1 if value else GateKind.CONST0
        if kind not in self._const_cache:
            self._const_cache[kind] = self._gate(kind)
        return self._const_cache[kind]

    def buf(self, a: Net, name: str = "") -> Net:
        return self._gate(GateKind.BUF, a, name=name)

    def not_(self, a: Net, name: str = "") -> Net:
        return self._gate(GateKind.NOT, a, name=name)

    def and_(self, *ins: Net, name: str = "") -> Net:
        return self._gate(GateKind.AND, *ins, name=name)

    def or_(self, *ins: Net, name: str = "") -> Net:
        return self._gate(GateKind.OR, *ins, name=name)

    def xor(self, *ins: Net, name: str = "") -> Net:
        return self._gate(GateKind.XOR, *ins, name=name)

    def nand(self, *ins: Net, name: str = "") -> Net:
        return self._gate(GateKind.NAND, *ins, name=name)

    def nor(self, *ins: Net, name: str = "") -> Net:
        return self._gate(GateKind.NOR, *ins, name=name)

    def xnor(self, *ins: Net, name: str = "") -> Net:
        return self._gate(GateKind.XNOR, *ins, name=name)

    def maj(self, a: Net, b: Net, c: Net, name: str = "") -> Net:
        return self._gate(GateKind.MAJ, a, b, c, name=name)

    def mux(self, select: Net, when0: Net, when1: Net, name: str = "") -> Net:
        return self._gate(GateKind.MUX, select, when0, when1, name=name)

    def half_adder(self, a: Net, b: Net) -> Tuple[Net, Net]:
        """Return ``(sum, carry)``."""
        return self.xor(a, b), self.and_(a, b)

    def full_adder(self, a: Net, b: Net, cin: Net) -> Tuple[Net, Net]:
        """Return ``(sum, carry)``; carry is a single MAJ gate."""
        return self.xor(a, b, cin), self.maj(a, b, cin)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, **input_values: int) -> Dict[str, int]:
        """Evaluate the circuit for named scalar inputs.

        Bus inputs declared with :meth:`input_bus` can be passed as the bus
        name with an integer value.
        """
        values = self._assign_inputs(input_values)
        return self._run(values)

    def evaluate_buses(self, **buses: int) -> Dict[str, int]:
        """Evaluate with integer-valued buses; returns outputs with buses
        re-packed into integers (LSB-first bit naming convention)."""
        flat: Dict[str, int] = {}
        names = {n.name for n in self.input_nets}
        for bus, value in buses.items():
            if bus in names:
                flat[bus] = value
                continue
            width = sum(1 for n in names if n.startswith(f"{bus}["))
            if width == 0:
                raise KeyError(f"no input or bus named {bus!r}")
            for i in range(width):
                flat[f"{bus}[{i}]"] = (value >> i) & 1
        raw = self.evaluate(**flat)
        return self._pack_outputs(raw)

    def _pack_outputs(self, raw: Dict[str, int]) -> Dict[str, int]:
        packed: Dict[str, int] = {}
        for name, value in raw.items():
            if "[" in name and name.endswith("]"):
                bus, idx = name[:-1].split("[")
                packed.setdefault(bus, 0)
                packed[bus] |= value << int(idx)
            else:
                packed[name] = value
        return packed

    def _assign_inputs(self, input_values: Dict[str, int]) -> List[Optional[int]]:
        values: List[Optional[int]] = [None] * len(self._nets)
        by_name = {n.name: n for n in self.input_nets}
        missing = set(by_name) - set(input_values)
        extra = set(input_values) - set(by_name)
        if missing:
            raise KeyError(f"missing inputs: {sorted(missing)}")
        if extra:
            raise KeyError(f"unknown inputs: {sorted(extra)}")
        for name, v in input_values.items():
            values[by_name[name].index] = v & 1
        return values

    def _run(self, values: List[Optional[int]]) -> Dict[str, int]:
        for gate in self.gates:  # gates are in topological order by construction
            ins = [values[i] for i in gate.inputs]
            if any(v is None for v in ins):
                raise RuntimeError("net used before being driven")
            values[gate.output] = _EVAL[gate.kind](ins)
        out = {}
        for name, net in self.output_nets.items():
            v = values[net.index]
            if v is None:
                raise RuntimeError(f"output {name} is undriven")
            out[name] = v
        return out

    def evaluate_vector(self, **buses):
        """Vectorized evaluation: each bus maps to a numpy integer array.

        Evaluates the circuit once per array element, in bulk — the
        workhorse behind exhaustive (2^16-case) equivalence checks of
        datapath circuits.  Returns outputs as numpy arrays with buses
        re-packed into integers.
        """
        import numpy as np

        names = {n.name for n in self.input_nets}
        lanes = None
        flat = {}
        for bus, value in buses.items():
            arr = np.asarray(value, dtype=np.int64)
            lanes = len(arr) if lanes is None else lanes
            if bus in names:
                flat[bus] = (arr & 1).astype(np.uint8)
                continue
            width = sum(1 for n in names if n.startswith(f"{bus}["))
            if width == 0:
                raise KeyError(f"no input or bus named {bus!r}")
            for i in range(width):
                flat[f"{bus}[{i}]"] = ((arr >> i) & 1).astype(np.uint8)
        missing = names - set(flat)
        if missing:
            raise KeyError(f"missing inputs: {sorted(missing)}")

        values = [None] * len(self._nets)
        by_name = {n.name: n for n in self.input_nets}
        for name, arr in flat.items():
            values[by_name[name].index] = arr

        ones = np.ones(lanes, dtype=np.uint8)
        zeros = np.zeros(lanes, dtype=np.uint8)
        for gate in self.gates:
            ins = [values[i] for i in gate.inputs]
            k = gate.kind
            if k is GateKind.CONST0:
                out = zeros
            elif k is GateKind.CONST1:
                out = ones
            elif k is GateKind.BUF:
                out = ins[0]
            elif k is GateKind.NOT:
                out = ins[0] ^ 1
            elif k is GateKind.AND:
                out = ins[0]
                for x in ins[1:]:
                    out = out & x
            elif k is GateKind.OR:
                out = ins[0]
                for x in ins[1:]:
                    out = out | x
            elif k is GateKind.XOR:
                out = ins[0]
                for x in ins[1:]:
                    out = out ^ x
            elif k is GateKind.NAND:
                out = ins[0]
                for x in ins[1:]:
                    out = out & x
                out = out ^ 1
            elif k is GateKind.NOR:
                out = ins[0]
                for x in ins[1:]:
                    out = out | x
                out = out ^ 1
            elif k is GateKind.XNOR:
                out = ins[0]
                for x in ins[1:]:
                    out = out ^ x
                out = out ^ 1
            elif k is GateKind.MAJ:
                s = ins[0].astype(np.uint8) + ins[1] + ins[2]
                out = (s >= 2).astype(np.uint8)
            elif k is GateKind.MUX:
                out = np.where(ins[0] != 0, ins[2], ins[1]).astype(np.uint8)
            else:  # pragma: no cover
                raise ValueError(f"unknown gate kind {k}")
            values[gate.output] = out

        packed = {}
        for name, net in self.output_nets.items():
            v = values[net.index]
            if "[" in name and name.endswith("]"):
                bus, idx = name[:-1].split("[")
                if bus not in packed:
                    packed[bus] = np.zeros(lanes, dtype=np.int64)
                packed[bus] |= v.astype(np.int64) << int(idx)
            else:
                packed[name] = v.astype(np.int64)
        return packed

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def gate_count(self) -> Dict[GateKind, int]:
        counts: Dict[GateKind, int] = {}
        for g in self.gates:
            counts[g.kind] = counts.get(g.kind, 0) + 1
        return counts

    def depth(self) -> int:
        """Longest input-to-output path, in gates (constants have depth 0)."""
        level = [0] * len(self._nets)
        for g in self.gates:
            src = max((level[i] for i in g.inputs), default=0)
            cost = 0 if g.kind in (GateKind.CONST0, GateKind.CONST1, GateKind.BUF) else 1
            level[g.output] = src + cost
        return max((level[n.index] for n in self.output_nets.values()), default=0)

    def __repr__(self):
        return (
            f"Circuit({self.name!r}, {len(self.input_nets)} inputs, "
            f"{len(self.output_nets)} outputs, {len(self.gates)} gates)"
        )


def _eval_var(fn):
    return lambda ins: int(fn(ins))


_EVAL = {
    GateKind.CONST0: lambda ins: 0,
    GateKind.CONST1: lambda ins: 1,
    GateKind.BUF: lambda ins: ins[0],
    GateKind.NOT: lambda ins: 1 - ins[0],
    GateKind.AND: _eval_var(lambda ins: all(ins)),
    GateKind.OR: _eval_var(lambda ins: any(ins)),
    GateKind.XOR: _eval_var(lambda ins: sum(ins) & 1),
    GateKind.NAND: _eval_var(lambda ins: not all(ins)),
    GateKind.NOR: _eval_var(lambda ins: not any(ins)),
    GateKind.XNOR: _eval_var(lambda ins: (sum(ins) & 1) == 0),
    GateKind.MAJ: _eval_var(lambda ins: sum(ins) >= 2),
    GateKind.MUX: lambda ins: ins[2] if ins[0] else ins[1],
}

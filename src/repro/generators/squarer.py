"""Squarer specialization (Section II-A).

"More subtly, a square requires fewer bit-level operations to compute than
a multiplication": the symmetric partial products ``a_i a_j + a_j a_i``
fold into ``a_i a_j`` shifted one column left, and the diagonal products
``a_i a_i`` collapse to ``a_i``, cutting the partial-product count from
``n^2`` to ``n(n+1)/2``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..bitheap import compress_greedy, multiplier_heap, squarer_heap

__all__ = ["Squarer"]


@dataclass
class Squarer:
    """A generated unsigned fixed-point squarer."""

    input_bits: int

    def apply(self, x: int) -> int:
        """Compute ``x * x`` through the specialized partial-product heap."""
        if not 0 <= x < (1 << self.input_bits):
            raise ValueError(f"{x} out of range for {self.input_bits} bits")
        return squarer_heap(self.input_bits, x).value()

    def partial_products(self) -> int:
        return squarer_heap(self.input_bits).total_bits()

    def generic_partial_products(self) -> int:
        """Partial products of the unspecialized multiplier, for comparison."""
        return multiplier_heap(self.input_bits, self.input_bits).total_bits()

    def savings(self) -> float:
        """Fraction of partial products removed by specialization."""
        return 1.0 - self.partial_products() / self.generic_partial_products()

    def compressed_area(self) -> float:
        """LUT-area estimate after bit-heap compression."""
        return compress_greedy(squarer_heap(self.input_bits)).total_area()

    def generic_compressed_area(self) -> float:
        return compress_greedy(
            multiplier_heap(self.input_bits, self.input_bits)
        ).total_area()

"""Constant multiplication: the classic operator specialization.

Section II-A: "The most classical example is multiplication by a constant,
which has been extensively studied."  A constant multiplier needs no
multiplier array at all: the constant is recoded into canonical signed
digits (CSD) and the product becomes a handful of shifted adds.

The multiple-constant-multiplication (MCM) problem [8] shares intermediate
results between several constants multiplying the same input; we implement
a common-subexpression-elimination heuristic over CSD digit patterns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

__all__ = ["csd_digits", "shift_add_cost", "ConstantMultiplier", "MultipleConstantMultiplier"]


def csd_digits(constant: int) -> List[Tuple[int, int]]:
    """Canonical signed-digit recoding: list of ``(shift, +1/-1)`` terms.

    CSD has no two adjacent nonzero digits, which minimizes the number of
    add/subtract terms among signed-digit representations:

    >>> csd_digits(15)          # 16 - 1, not 8+4+2+1
    [(0, -1), (4, 1)]
    """
    if constant == 0:
        return []
    sign = 1
    if constant < 0:
        sign, constant = -1, -constant
    digits: List[Tuple[int, int]] = []
    shift = 0
    while constant:
        if constant & 1:
            # Look at the next bit to decide between +1 and -1 (carry).
            if constant & 2:
                digits.append((shift, -sign))
                constant += 1
            else:
                digits.append((shift, sign))
                constant -= 1
        constant >>= 1
        shift += 1
    return digits


def shift_add_cost(constant: int) -> int:
    """Adders needed to multiply by ``constant`` via CSD (terms - 1)."""
    return max(0, len(csd_digits(constant)) - 1)


@dataclass
class ConstantMultiplier:
    """A generated multiply-by-constant operator.

    The operator computes ``constant * x`` exactly, as a sum of shifted
    (possibly negated) copies of ``x`` — hardware cost is ``adders`` ripple
    adders of roughly ``input_bits + log2(constant)`` bits each, versus a
    full multiplier array for the generic operator.
    """

    constant: int
    input_bits: int
    digits: List[Tuple[int, int]] = field(init=False)

    def __post_init__(self):
        self.digits = csd_digits(self.constant)

    @property
    def adders(self) -> int:
        return max(0, len(self.digits) - 1)

    @property
    def generic_multiplier_cost(self) -> int:
        """Adder-equivalents of a generic multiplier for comparison: one
        row of adders per input bit (the array of Fig. 3)."""
        return max(0, self.constant.bit_length() - 1)

    def apply(self, x: int) -> int:
        """Evaluate through the shift-add network (exact)."""
        return sum(sign * (x << shift) for shift, sign in self.digits)

    def __str__(self):
        terms = " ".join(
            f"{'+' if sign > 0 else '-'} (x << {shift})" for shift, sign in self.digits
        )
        return f"{self.constant} * x = {terms.lstrip('+ ')}"


@dataclass
class MultipleConstantMultiplier:
    """Shared shift-add network multiplying one input by several constants.

    Section II-A's *operator sharing*: "look for intermediate computations
    that can be used by several subsequent computations", here with the
    classic CSD common-subexpression heuristic (repeatedly extract the most
    frequent signed digit pair).
    """

    constants: Sequence[int]
    input_bits: int = 16

    def __post_init__(self):
        self.constants = [c for c in self.constants]
        self._build()

    def _build(self):
        # Represent each constant as a dict shift -> signed digit.
        self.digit_maps: List[Dict[int, int]] = []
        for c in self.constants:
            self.digit_maps.append({s: d for s, d in csd_digits(c)})
        self.shared_terms: List[Tuple[int, int, int]] = []  # (dshift, d1, d2)
        self._extract_subexpressions()

    def _pattern_counts(self) -> Dict[Tuple[int, int, int], int]:
        counts: Dict[Tuple[int, int, int], int] = {}
        for dm in self.digit_maps:
            # Only raw CSD digits (int keys) form patterns; tuple keys are
            # already-substituted shared terms.
            shifts = sorted(k for k in dm if isinstance(k, int))
            for i, s1 in enumerate(shifts):
                for s2 in shifts[i + 1 :]:
                    key = (s2 - s1, dm[s1], dm[s2])
                    counts[key] = counts.get(key, 0) + 1
        return counts

    def _extract_subexpressions(self):
        while True:
            counts = self._pattern_counts()
            best = max(counts.items(), key=lambda kv: kv[1], default=None)
            if best is None or best[1] < 2:
                break
            (dshift, d1, d2), _ = best
            self.shared_terms.append((dshift, d1, d2))
            token = -(len(self.shared_terms))  # negative keys mark shared terms
            for dm in self.digit_maps:
                shifts = sorted(k for k in dm if isinstance(k, int))
                replaced = False
                for i, s1 in enumerate(shifts):
                    if replaced:
                        break
                    for s2 in shifts[i + 1 :]:
                        if s2 - s1 == dshift and dm.get(s1) == d1 and dm.get(s2) == d2:
                            del dm[s1], dm[s2]
                            dm[self._token_key(token, s1)] = 1
                            replaced = True
                            break

    @staticmethod
    def _token_key(token: int, shift: int) -> Tuple[int, int]:
        return (token, shift)

    def adder_count(self) -> int:
        """Total adders: one per shared term, plus per-constant reassembly."""
        total = len(self.shared_terms)
        for dm in self.digit_maps:
            total += max(0, len(dm) - 1)
        return total

    def naive_adder_count(self) -> int:
        """Adders without sharing: independent CSD multipliers."""
        return sum(shift_add_cost(c) for c in self.constants)

    def apply(self, x: int) -> List[int]:
        """Evaluate all products (exact), going through the shared terms."""
        shared_values = [
            d1 * x + d2 * (x << dshift) for dshift, d1, d2 in self.shared_terms
        ]
        out = []
        for dm in self.digit_maps:
            acc = 0
            for key, digit in dm.items():
                if isinstance(key, tuple):
                    token, shift = key
                    acc += digit * (shared_values[-token - 1] << shift)
                else:
                    acc += digit * (x << key)
            out.append(acc)
        return out

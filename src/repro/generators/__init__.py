"""FloPoCo-style application-specific operator generators (Section II).

Each generator here follows the paper's "computing just right" discipline:
the operator's *output format* fully specifies its accuracy contract — the
result must be **faithfully rounded** (error strictly below one ULP of the
output format) — and the generator chooses every internal bit width to meet
that contract at minimal cost.

Generators provided:

* :mod:`repro.generators.constmult` — multiplication by a constant (CSD
  shift-and-add) and the multiple-constant-multiplication sharing problem.
* :mod:`repro.generators.squarer` — operator specialization of the square.
* :mod:`repro.generators.tables` — plain, bipartite and multipartite table
  function approximators.
* :mod:`repro.generators.polyapprox` — piecewise polynomial approximation
  (tables + multipliers).
* :mod:`repro.generators.sincos` — the Fig. 1 parametric fixed-point
  sine/cosine operator.
* :mod:`repro.generators.fused` — the fused ``x / sqrt(x^2 + y^2)``
  operator used as the paper's operator-fusion example.
* :mod:`repro.generators.errors` — the error-analysis helpers every
  generator uses to prove faithfulness.
"""

from .errors import ErrorBudget, ulp, max_abs_error, is_faithful
from .constmult import (
    csd_digits,
    ConstantMultiplier,
    MultipleConstantMultiplier,
    shift_add_cost,
)
from .squarer import Squarer
from .tables import PlainTable, BipartiteTable, MultipartiteTable
from .polyapprox import PiecewisePolynomial
from .sincos import SinCosGenerator, SinCosReport
from .fused import FusedNorm
from .fir import FIRFilter

__all__ = [
    "ErrorBudget",
    "ulp",
    "max_abs_error",
    "is_faithful",
    "csd_digits",
    "ConstantMultiplier",
    "MultipleConstantMultiplier",
    "shift_add_cost",
    "Squarer",
    "PlainTable",
    "BipartiteTable",
    "MultipartiteTable",
    "PiecewisePolynomial",
    "SinCosGenerator",
    "SinCosReport",
    "FusedNorm",
    "FIRFilter",
]

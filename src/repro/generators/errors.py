"""Error-analysis helpers: the "computing just right" contract.

Section II-B: "No component should output bits that do not carry useful
information ... there is no need to specify the accuracy, as it should be
deduced from the output format."  Concretely, every generator in this
package promises *faithful rounding*: for each input, the returned
fixed-point output differs from the exact mathematical value by strictly
less than one ULP of the output format.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Iterable, Optional, Tuple

__all__ = ["ulp", "ErrorBudget", "max_abs_error", "is_faithful"]


def ulp(frac_bits: int) -> Fraction:
    """One unit in the last place of a format with ``frac_bits`` fraction bits."""
    return Fraction(1, 1 << frac_bits)


@dataclass
class ErrorBudget:
    """Tracks how one output ULP is spent across an operator's pipeline.

    A faithful operator may accumulate strictly less than 1 ULP of total
    error; generators split that between method error (approximation) and
    rounding error (truncations), exactly like FloPoCo papers do.
    """

    output_frac_bits: int
    entries: list = field(default_factory=list)

    @property
    def total_allowed(self) -> Fraction:
        return ulp(self.output_frac_bits)

    def spend(self, label: str, amount: Fraction) -> "ErrorBudget":
        """Record an error contribution (raises if the budget is blown)."""
        self.entries.append((label, amount))
        if self.total_spent() >= self.total_allowed:
            raise ValueError(
                f"error budget exceeded after {label!r}: "
                f"{float(self.total_spent())} >= {float(self.total_allowed)}"
            )
        return self

    def total_spent(self) -> Fraction:
        return sum((amount for _, amount in self.entries), Fraction(0))

    def remaining(self) -> Fraction:
        return self.total_allowed - self.total_spent()

    def __str__(self):
        lines = [f"budget: 1 ulp = {float(self.total_allowed):.3e}"]
        for label, amount in self.entries:
            lines.append(f"  {label}: {float(amount):.3e}")
        lines.append(f"  remaining: {float(self.remaining()):.3e}")
        return "\n".join(lines)


def max_abs_error(
    operator: Callable[[int], int],
    reference: Callable[[int], Fraction],
    inputs: Iterable[int],
    output_frac_bits: int,
) -> Tuple[Fraction, Optional[int]]:
    """Exhaustive error measurement of an integer-in/integer-out operator.

    ``operator`` maps an input code to an output code (scaled by
    ``2**-output_frac_bits``); ``reference`` gives the exact value.
    Returns ``(max_error, argmax_input)`` in real units.
    """
    worst = Fraction(0)
    worst_x = None
    scale = ulp(output_frac_bits)
    for x in inputs:
        err = abs(Fraction(operator(x)) * scale - reference(x))
        if err > worst:
            worst, worst_x = err, x
    return worst, worst_x


def is_faithful(
    operator: Callable[[int], int],
    reference: Callable[[int], Fraction],
    inputs: Iterable[int],
    output_frac_bits: int,
) -> bool:
    """True when the operator is faithfully rounded over ``inputs``."""
    worst, _ = max_abs_error(operator, reference, inputs, output_frac_bits)
    return worst < ulp(output_frac_bits)

"""Piecewise-polynomial function approximation (Section II-A).

"...or by using multipliers additionally, thanks to polynomial
approximation."  The domain splits into ``2**seg_bits`` segments addressed
by the top input bits; each segment carries a degree-``degree`` polynomial
in the centered local variable, fitted at Chebyshev nodes (near-minimax).
Coefficients are quantized onto a guarded fixed-point grid and evaluation
is a Horner scheme on integers — exactly the architecture a FloPoCo
polynomial evaluator generates, including the truncations at each step.

The constructor increases the segment count until exhaustive verification
shows faithful rounding.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Callable, List, Optional

from .errors import is_faithful, max_abs_error, ulp

__all__ = ["PiecewisePolynomial"]


def _chebyshev_nodes(n: int) -> List[float]:
    """n Chebyshev nodes in (-1, 1)."""
    return [math.cos((2 * k + 1) * math.pi / (2 * n)) for k in range(n)]


def _fit_segment(func, left: float, width: float, degree: int) -> List[float]:
    """Fit a degree-``degree`` polynomial in t in [-1/2, 1/2] on one segment."""
    import numpy as np

    ts = [0.5 * t for t in _chebyshev_nodes(max(degree + 1, degree + 1))]
    xs = [left + (t + 0.5) * width for t in ts]
    ys = [float(func(Fraction(x).limit_denominator(10**12))) for x in xs]
    coeffs = np.polynomial.polynomial.polyfit(ts, ys, degree)
    return [float(c) for c in coeffs]


class PiecewisePolynomial:
    """Faithful piecewise-polynomial operator on [0, 1)."""

    def __init__(
        self,
        func: Callable[[Fraction], Fraction],
        in_bits: int,
        out_frac_bits: int,
        degree: int = 2,
        seg_bits: Optional[int] = None,
        guard_bits: int = 4,
        max_seg_bits: int = 12,
    ):
        self.func = func
        self.in_bits = in_bits
        self.out_frac_bits = out_frac_bits
        self.degree = degree
        self.guard_bits = guard_bits

        seg_bits = seg_bits if seg_bits is not None else max(1, in_bits // 3)
        while True:
            self._build(seg_bits)
            if self.verify_faithful():
                break
            seg_bits += 1
            if seg_bits > min(max_seg_bits, self.in_bits):
                raise ValueError(
                    f"no faithful degree-{degree} evaluator up to 2^{max_seg_bits} segments"
                )

    def _build(self, seg_bits: int):
        self.seg_bits = seg_bits
        g = self.guard_bits
        self.work_bits = self.out_frac_bits + g
        width = 1.0 / (1 << seg_bits)
        self.coeff_codes: List[List[int]] = []
        for seg in range(1 << seg_bits):
            coeffs = _fit_segment(self.func, seg * width, width, self.degree)
            self.coeff_codes.append(
                [int(round(c * (1 << self.work_bits))) for c in coeffs]
            )

    # ------------------------------------------------------------------
    def lookup(self, x: int) -> int:
        """Evaluate: segment select, centered local variable, integer Horner."""
        low_bits = self.in_bits - self.seg_bits
        seg = x >> low_bits
        # Local variable t in [-1/2, 1/2), as a signed integer scaled by
        # 2**low_bits (the T-box truncation grid of Fig. 1).
        t_code = (x & ((1 << low_bits) - 1)) - (1 << (low_bits - 1) if low_bits else 0)
        coeffs = self.coeff_codes[seg]
        acc = coeffs[-1]
        for c in reversed(coeffs[:-1]):
            # acc * t is scaled by 2**(work + low); shift back to work grid.
            prod = acc * t_code
            acc = c + (prod >> low_bits if low_bits else prod)
        half = 1 << (self.guard_bits - 1)
        return (acc + half) >> self.guard_bits

    def reference(self, x: int) -> Fraction:
        return self.func(Fraction(x, 1 << self.in_bits))

    def verify_faithful(self) -> bool:
        step = 1  # exhaustive; in_bits is expected to be modest (<= ~14)
        return is_faithful(
            self.lookup,
            self.reference,
            range(0, 1 << self.in_bits, step),
            self.out_frac_bits,
        )

    def max_error_ulps(self) -> float:
        worst, _ = max_abs_error(
            self.lookup, self.reference, range(1 << self.in_bits), self.out_frac_bits
        )
        return float(worst / ulp(self.out_frac_bits))

    def table_bits(self) -> int:
        def width(vals):
            m = max((abs(v) for v in vals), default=1)
            return max(m.bit_length() + 1, 2)

        total = 0
        for k in range(self.degree + 1):
            col = [c[k] for c in self.coeff_codes]
            total += len(col) * width(col)
        return total

    def multiplier_count(self) -> int:
        """Horner evaluation uses one multiplier per degree."""
        return self.degree

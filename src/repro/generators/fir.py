"""Faithful FIR filters: "computing just right" for signal processing.

Section II cites table-based FIR and IIR filters [1] as flagship consumers
of the bit-heap framework and of the one-ULP accuracy discipline.  This
generator builds a direct-form FIR with:

* coefficients quantized onto an internally chosen grid — enough fraction
  bits that the *worst-case* coefficient-quantization error over the input
  range stays under half the output budget;
* a shared multiplier block (the MCM operator of Section II-A) computing
  all coefficient products of each input sample;
* an exact accumulation (integers never lie) and one final rounding.

The result is faithful to the output format by construction, and the error
budget is checkable: :meth:`FIRFilter.error_budget` shows where the output
ULP went.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Sequence

from .constmult import MultipleConstantMultiplier, shift_add_cost
from .errors import ErrorBudget, ulp

__all__ = ["FIRFilter"]


class FIRFilter:
    """A generated fixed-point FIR filter, faithful to its output format.

    Inputs are signed codes scaled by ``2**-in_frac_bits``; outputs are
    signed codes scaled by ``2**-out_frac_bits``.
    """

    def __init__(
        self,
        coefficients: Sequence[float],
        in_frac_bits: int,
        out_frac_bits: int,
        in_int_bits: int = 1,
    ):
        self.float_coeffs = [float(c) for c in coefficients]
        self.in_frac_bits = in_frac_bits
        self.out_frac_bits = out_frac_bits
        self.in_int_bits = in_int_bits

        # --- choose the coefficient grid from the error budget -----------
        # Output error sources: (1) coefficient quantization, amplified by
        # the maximum input magnitude and the tap count; (2) the final
        # rounding (half a ULP).  Spend at most a quarter ULP on (1).
        max_in = float(1 << in_int_bits)  # |x| < 2**in_int_bits
        budget = ulp(out_frac_bits)
        taps = len(self.float_coeffs)
        # (taps * max_in) * 2^-(cbits+1) <= budget / 4
        need = Fraction(taps * max_in * 4) / budget
        self.coeff_frac_bits = max(out_frac_bits, int(need).bit_length())

        self.coeff_codes = [
            int(round(c * (1 << self.coeff_frac_bits))) for c in self.float_coeffs
        ]
        # The MCM block shares shift-add structure among |coefficients|.
        magnitudes = sorted({abs(c) for c in self.coeff_codes if c})
        self.mcm = MultipleConstantMultiplier(magnitudes) if magnitudes else None
        self._mag_index = {m: i for i, m in enumerate(magnitudes)}

    # ------------------------------------------------------------------
    @property
    def taps(self) -> int:
        return len(self.float_coeffs)

    def adder_cost(self) -> int:
        """Adders in the shared coefficient block (plus the tap sum)."""
        shared = self.mcm.adder_count() if self.mcm else 0
        return shared + max(0, self.taps - 1)

    def naive_adder_cost(self) -> int:
        """Unshared CSD multipliers per tap."""
        return sum(shift_add_cost(abs(c)) for c in self.coeff_codes) + max(0, self.taps - 1)

    def error_budget(self) -> ErrorBudget:
        """How the one-ULP output budget is spent (must not overflow)."""
        budget = ErrorBudget(self.out_frac_bits)
        max_in = Fraction(1 << self.in_int_bits)
        quant = sum(
            abs(Fraction(code, 1 << self.coeff_frac_bits) - Fraction(c).limit_denominator(10**12))
            for code, c in zip(self.coeff_codes, self.float_coeffs)
        ) * max_in
        budget.spend("coefficient quantization", quant)
        budget.spend("final rounding", ulp(self.out_frac_bits) / 2)
        return budget

    # ------------------------------------------------------------------
    def apply(self, samples: Sequence[int]) -> List[int]:
        """Filter a sequence of input codes (zero-padded history)."""
        out: List[int] = []
        history = [0] * self.taps
        shift = self.in_frac_bits + self.coeff_frac_bits - self.out_frac_bits
        for x in samples:
            history = [x] + history[:-1]
            acc = 0
            for coeff, xk in zip(self.coeff_codes, history):
                if coeff == 0 or xk == 0:
                    continue
                # Shared MCM block: products come from the magnitude network.
                mag = self.mcm.apply(abs(xk))[self._mag_index[abs(coeff)]]
                neg = (coeff < 0) ^ (xk < 0)
                acc += -mag if neg else mag
            # One rounding to the output grid (round to nearest, ties even).
            if shift > 0:
                kept = acc >> shift  # floor, also for negatives
                rem = acc - (kept << shift)
                half = 1 << (shift - 1)
                if rem > half or (rem == half and (kept & 1)):
                    kept += 1
                out.append(kept)
            else:
                out.append(acc << (-shift))
        return out

    def reference(self, samples: Sequence[int]) -> List[Fraction]:
        """Exact outputs using the *quantized* coefficients."""
        out: List[Fraction] = []
        history = [0] * self.taps
        cs = [Fraction(c, 1 << self.coeff_frac_bits) for c in self.coeff_codes]
        scale = Fraction(1, 1 << self.in_frac_bits)
        for x in samples:
            history = [x] + history[:-1]
            out.append(sum((c * Fraction(xk) * scale for c, xk in zip(cs, history)), Fraction(0)))
        return out

    def max_error_ulps(self, samples: Sequence[int]) -> float:
        got = self.apply(samples)
        want = self.reference(samples)
        u = ulp(self.out_frac_bits)
        worst = Fraction(0)
        for g, w in zip(got, want):
            worst = max(worst, abs(Fraction(g, 1 << self.out_frac_bits) - w))
        return float(worst / u)

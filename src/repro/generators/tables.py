"""Table-based function approximators (Section II-A).

Three generators of increasing sophistication, all faithful to the output
format by construction-plus-verification:

* :class:`PlainTable` — tabulate everything ("by using plain tabulation").
  Perfect accuracy (correct rounding), exponential size.
* :class:`BipartiteTable` — "by using only tables and additions": a table
  of initial values plus a table of offsets, exploiting the slowly varying
  slope of the function [11].
* :class:`MultipartiteTable` — the generalization with several offset
  tables, trading one more adder for a further size reduction.

All operators map an input code ``x`` (``in_bits`` bits, value
``x * 2**-in_bits`` in [0, 1)) to an output code scaled by
``2**-out_frac_bits``.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, List, Optional

from .errors import is_faithful, max_abs_error, ulp

__all__ = ["PlainTable", "BipartiteTable", "MultipartiteTable"]

Real = Callable[[Fraction], Fraction]


def _round_nearest(value: Fraction, frac_bits: int) -> int:
    """Round a real to an integer code on the 2**-frac_bits grid (RNE)."""
    scaled = value * (1 << frac_bits)
    floor = scaled.numerator // scaled.denominator
    rem = scaled - floor
    if rem > Fraction(1, 2) or (rem == Fraction(1, 2) and floor % 2):
        return floor + 1
    return floor


class PlainTable:
    """Exhaustive tabulation: one correctly rounded entry per input."""

    def __init__(self, func: Real, in_bits: int, out_frac_bits: int):
        self.in_bits = in_bits
        self.out_frac_bits = out_frac_bits
        scale = Fraction(1, 1 << in_bits)
        self.entries = [
            _round_nearest(func(Fraction(x) * scale), out_frac_bits)
            for x in range(1 << in_bits)
        ]

    def lookup(self, x: int) -> int:
        return self.entries[x]

    def table_bits(self) -> int:
        """Total storage: entries x entry width."""
        width = max(max(self.entries).bit_length(), 1)
        return (1 << self.in_bits) * width


class BipartiteTable:
    """Bipartite approximation: ``f(x) ~ TIV[A,B] + TO[A,C]``.

    The input splits into three fields ``x = A:B:C`` of ``alpha``, ``beta``,
    ``gamma`` bits.  The table of initial values samples ``f`` at the center
    of each ``C`` range; the table of offsets stores the first-order
    correction ``slope(A) * (C - C_mid)``, shared across all ``B`` — the
    size drops from ``2**(a+b+g)`` to ``2**(a+b) + 2**(a+g)`` entries.

    The constructor auto-verifies faithfulness and, if the first-order
    method error is too large for the requested split, shrinks ``gamma``
    (moving bits into ``beta``) until the contract holds.
    """

    def __init__(
        self,
        func: Real,
        in_bits: int,
        out_frac_bits: int,
        alpha: Optional[int] = None,
        guard_bits: int = 2,
    ):
        self.func = func
        self.in_bits = in_bits
        self.out_frac_bits = out_frac_bits
        self.guard_bits = guard_bits

        alpha = alpha if alpha is not None else max(1, in_bits // 3)
        gamma = max(1, (in_bits - alpha) // 2)
        while True:
            beta = in_bits - alpha - gamma
            if beta < 0:
                raise ValueError("in_bits too small for a bipartite split")
            self._build(alpha, beta, gamma)
            if gamma == 0 or self.verify_faithful():
                break
            gamma -= 1  # move precision from the offset table to the TIV
        if not self.verify_faithful():
            raise ValueError("bipartite generator could not reach faithfulness")

    # ------------------------------------------------------------------
    def _build(self, alpha: int, beta: int, gamma: int):
        self.alpha, self.beta, self.gamma = alpha, beta, gamma
        g = self.guard_bits
        work_bits = self.out_frac_bits + g
        in_scale = Fraction(1, 1 << self.in_bits)

        c_mid = Fraction((1 << gamma) - 1, 2) if gamma else Fraction(0)

        # TIV[A:B]: f at the C-midpoint of the cell.
        self.tiv: List[int] = []
        for ab in range(1 << (alpha + beta)):
            x_mid = (Fraction(ab << gamma) + c_mid) * in_scale
            self.tiv.append(_round_nearest(self.func(x_mid), work_bits))

        # TO[A:C]: slope of the A segment times the centered C offset.
        self.to: List[int] = []
        seg = Fraction(1, 1 << alpha)
        for a in range(1 << alpha):
            left = Fraction(a) * seg
            right = left + seg
            slope = (self.func(right if right <= 1 else Fraction(1)) - self.func(left)) / seg
            for c in range(1 << gamma):
                offset = (Fraction(c) - c_mid) * in_scale
                self.to.append(_round_nearest(slope * offset, work_bits))

    def lookup(self, x: int) -> int:
        a = x >> (self.beta + self.gamma)
        ab = x >> self.gamma
        c = x & ((1 << self.gamma) - 1)
        total = self.tiv[ab] + self.to[(a << self.gamma) | c]
        # Final rounding from the guarded grid to the output grid.
        g = self.guard_bits
        half = 1 << (g - 1) if g else 0
        return (total + half) >> g

    def table_bits(self) -> int:
        def width(entries):
            m = max((abs(e) for e in entries), default=1)
            return max(m.bit_length() + 1, 2)  # signed entries

        return len(self.tiv) * width(self.tiv) + len(self.to) * width(self.to)

    def reference(self, x: int) -> Fraction:
        return self.func(Fraction(x, 1 << self.in_bits))

    def verify_faithful(self) -> bool:
        return is_faithful(
            self.lookup, self.reference, range(1 << self.in_bits), self.out_frac_bits
        )

    def max_error_ulps(self) -> float:
        worst, _ = max_abs_error(
            self.lookup, self.reference, range(1 << self.in_bits), self.out_frac_bits
        )
        return float(worst / ulp(self.out_frac_bits))


class MultipartiteTable:
    """Multipartite approximation: one TIV plus ``m`` offset tables [11].

    The low input field splits into ``m`` sub-fields ``C_1 .. C_m``, each
    with its own table of offsets indexed by ``(A_i, C_i)`` where ``A_i``
    is a (possibly shorter) prefix of the input.  With the decomposition
    degenerating to :class:`BipartiteTable` for ``m = 1``.
    """

    def __init__(
        self,
        func: Real,
        in_bits: int,
        out_frac_bits: int,
        alpha: Optional[int] = None,
        parts: int = 2,
        guard_bits: int = 3,
    ):
        self.func = func
        self.in_bits = in_bits
        self.out_frac_bits = out_frac_bits
        self.guard_bits = guard_bits
        self.parts = parts

        alpha = alpha if alpha is not None else max(1, in_bits // 3)
        rest = in_bits - alpha
        beta = max(0, rest - parts * max(1, rest // (parts + 1)))
        gammas = [max(1, rest // (parts + 1))] * parts
        # Adjust so alpha + beta + sum(gammas) == in_bits.
        slack = in_bits - alpha - beta - sum(gammas)
        beta += slack
        while True:
            if beta < 0:
                raise ValueError("in_bits too small for this multipartite split")
            self._build(alpha, beta, gammas)
            if self.verify_faithful():
                break
            if all(g_ == 0 for g_ in gammas):
                raise ValueError("multipartite generator could not reach faithfulness")
            # Shrink the largest offset field, growing the TIV.
            i = max(range(parts), key=lambda k: gammas[k])
            gammas[i] -= 1
            beta += 1

    def _build(self, alpha: int, beta: int, gammas: List[int]):
        self.alpha, self.beta, self.gammas = alpha, beta, list(gammas)
        g = self.guard_bits
        work_bits = self.out_frac_bits + g
        in_scale = Fraction(1, 1 << self.in_bits)
        low_bits = sum(gammas)

        mids = [Fraction((1 << g_) - 1, 2) if g_ else Fraction(0) for g_ in gammas]
        # Combined low-field midpoint, in input LSBs.
        total_mid = Fraction(0)
        shift = low_bits
        for g_, mid in zip(gammas, mids):
            shift -= g_
            total_mid += mid * (1 << shift)

        self.tiv: List[int] = []
        for ab in range(1 << (alpha + beta)):
            x_mid = (Fraction(ab << low_bits) + total_mid) * in_scale
            self.tiv.append(_round_nearest(self.func(x_mid), work_bits))

        seg = Fraction(1, 1 << alpha)
        self.tos: List[List[int]] = []
        shift = low_bits
        for g_, mid in zip(gammas, mids):
            shift -= g_
            table: List[int] = []
            for a in range(1 << alpha):
                left = Fraction(a) * seg
                right = min(left + seg, Fraction(1))
                slope = (self.func(right) - self.func(left)) / seg
                for c in range(1 << g_):
                    offset = (Fraction(c) - mid) * (1 << shift) * in_scale
                    table.append(_round_nearest(slope * offset, work_bits))
            self.tos.append(table)

    def lookup(self, x: int) -> int:
        low_bits = sum(self.gammas)
        a = x >> (self.beta + low_bits)
        ab = x >> low_bits
        total = self.tiv[ab]
        shift = low_bits
        for g_, table in zip(self.gammas, self.tos):
            shift -= g_
            c = (x >> shift) & ((1 << g_) - 1)
            total += table[(a << g_) | c]
        g = self.guard_bits
        half = 1 << (g - 1) if g else 0
        return (total + half) >> g

    def table_bits(self) -> int:
        def width(entries):
            m = max((abs(e) for e in entries), default=1)
            return max(m.bit_length() + 1, 2)

        total = len(self.tiv) * width(self.tiv)
        for table in self.tos:
            total += len(table) * width(table)
        return total

    def reference(self, x: int) -> Fraction:
        return self.func(Fraction(x, 1 << self.in_bits))

    def verify_faithful(self) -> bool:
        return is_faithful(
            self.lookup, self.reference, range(1 << self.in_bits), self.out_frac_bits
        )

"""Operator fusion: the ``x / sqrt(x^2 + y^2)`` example (Section II-A).

"Operator fusion involves considering a compound mathematical expression
such as x / sqrt(x^2 + y^2) as a single operator to implement."  The fused
operator computes the exact compound value internally (squares are exact,
the square root and division carry sticky information) and rounds *once*
onto the output grid — so it is faithful by construction, whereas the
composition of individually rounded sub-operators accumulates several ULPs
of error and duplicates internal hardware (both squares feed one sum).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction

from .errors import ulp

__all__ = ["FusedNorm"]


def _round_nearest(value: Fraction, frac_bits: int) -> int:
    scaled = value * (1 << frac_bits)
    floor = scaled.numerator // scaled.denominator
    rem = scaled - floor
    if rem > Fraction(1, 2) or (rem == Fraction(1, 2) and floor % 2):
        return floor + 1
    return floor


@dataclass
class FusedNorm:
    """Fused ``x / sqrt(x^2 + y^2)`` on signed fixed-point inputs.

    Inputs are codes scaled by ``2**-in_frac_bits``; the output code is
    scaled by ``2**-out_frac_bits`` and lies in [-1, 1].
    """

    in_frac_bits: int
    out_frac_bits: int

    def apply(self, x_code: int, y_code: int) -> int:
        """Fused evaluation: exact compound value, single rounding."""
        if x_code == 0 and y_code == 0:
            raise ZeroDivisionError("x / sqrt(x^2 + y^2) undefined at the origin")
        # The input scale cancels in the compound expression, so work on
        # raw integers.  result = x / sqrt(x^2 + y^2), |result| <= 1.
        n = x_code * x_code + y_code * y_code
        # Compute x * 2^k / sqrt(n) with enough precision for one rounding.
        k = self.out_frac_bits + 4
        num = abs(x_code) << (2 * k)
        # floor(num / sqrt(n)) via isqrt of num^2 / n: use integer sqrt of
        # (x^2 << 4k) / n, which keeps all information in the remainder.
        q = math.isqrt((x_code * x_code << (4 * k)) // n)
        value = Fraction(q, 1 << (2 * k))
        if x_code < 0:
            value = -value
        return _round_nearest(value, self.out_frac_bits)

    def apply_composed(self, x_code: int, y_code: int) -> int:
        """Baseline: the same expression from separately rounded operators.

        Each sub-operator (square, square, add, sqrt, divide) rounds to the
        *same* output grid before passing on — what a designer gets by
        chaining catalog IP blocks instead of fusing.
        """
        if x_code == 0 and y_code == 0:
            raise ZeroDivisionError("x / sqrt(x^2 + y^2) undefined at the origin")
        p = self.out_frac_bits
        scale_in = Fraction(1, 1 << self.in_frac_bits)
        x = Fraction(x_code) * scale_in
        y = Fraction(y_code) * scale_in
        x2 = Fraction(_round_nearest(x * x, p), 1 << p)
        y2 = Fraction(_round_nearest(y * y, p), 1 << p)
        s = x2 + y2  # same-grid addition is exact
        root = Fraction(_round_nearest(_sqrt_frac(s), p), 1 << p)
        if root == 0:
            # The composed pipeline underflowed: saturate like hardware would.
            return (1 << p) if x_code > 0 else -(1 << p)
        return _round_nearest(x / root, p)

    def reference(self, x_code: int, y_code: int) -> Fraction:
        """The compound value to ~2**-128 (irrational in general)."""
        n = x_code * x_code + y_code * y_code
        q = math.isqrt((x_code * x_code << 256) // n)
        value = Fraction(q, 1 << 128)
        return -value if x_code < 0 else value

    def max_error_ulps(self, fused: bool, limit: int = 64) -> float:
        """Worst error over the [1..limit]^2 grid (plus negative x)."""
        worst = Fraction(0)
        u = ulp(self.out_frac_bits)
        fn = self.apply if fused else self.apply_composed
        for x in range(-limit, limit + 1):
            for y in range(1, limit + 1):
                if x == 0:
                    continue
                got = Fraction(fn(x, y), 1 << self.out_frac_bits)
                worst = max(worst, abs(got - self.reference(x, y)))
        return float(worst / u)


def _sqrt_frac(x: Fraction, bits: int = 80) -> Fraction:
    """sqrt(x) to ~2**-bits relative error."""
    if x < 0:
        raise ValueError("sqrt of a negative value")
    scaled = (x.numerator << (2 * bits)) // x.denominator
    return Fraction(math.isqrt(scaled), 1 << bits)

"""The Fig. 1 parametric fixed-point sine/cosine operator [9].

Computes ``sin(pi * x)`` and ``cos(pi * x)`` for a fixed-point input
``x in [0, 2)`` (i.e. the full circle), with every internal bit width
derived from the output format — the generator reproduces the paper's
claim that "each bit-width on this figure is computed by the generator,
and very few signals have the same bit width".

Architecture (following the FloPoCo fixed-point trigonometric paper):

1. **Octant reduction** — the top three input bits select the octant; the
   remaining bits form the reduced argument ``y in [0, 1/8)``.  Inside an
   octant, sin/cos of the full angle are ±sin/±cos of the reduced angle,
   possibly swapped.
2. **Split** ``y = A : Y_red`` — the ``a``-bit field ``A`` addresses tables
   of ``sin(pi * A_mid)`` and ``cos(pi * A_mid)`` (the colored tables of
   Fig. 1), where ``A_mid`` is the center of the ``A`` cell, making the
   residual ``z = y - A_mid`` symmetric: ``|z| <= 2**-(a+4)``.
3. **Polynomial correction** — ``sin(pi z)`` and ``cos(pi z)`` from short
   Taylor series whose order is *chosen from the error budget*; the
   products ``sinA*cosZ ± cosA*sinZ`` are truncated (the T boxes) onto a
   guarded working grid.
4. **Reconstruction and rounding** to the output format.

The generator verifies faithfulness exhaustively for small widths and by
dense randomized sweep above that.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Tuple

from .errors import ulp

__all__ = ["SinCosGenerator", "SinCosReport"]

# pi to 200 bits, as a fraction -- enough for any width this generator meets.
_PI = Fraction(math.pi).limit_denominator(10**40)


def _round_nearest(value: Fraction, frac_bits: int) -> int:
    scaled = value * (1 << frac_bits)
    floor = scaled.numerator // scaled.denominator
    rem = scaled - floor
    if rem > Fraction(1, 2) or (rem == Fraction(1, 2) and floor % 2):
        return floor + 1
    return floor


@dataclass
class SinCosReport:
    """Every parameter and internal width the generator chose (Fig. 1)."""

    out_frac_bits: int
    in_frac_bits: int
    table_address_bits: int
    table_entry_bits: int
    residual_bits: int
    working_bits: int
    taylor_terms_sin: int
    taylor_terms_cos: int
    table_entries: int
    verified_faithful: bool = False

    def widths(self) -> Dict[str, int]:
        return {
            "input": self.in_frac_bits,
            "table_address(A)": self.table_address_bits,
            "table_entry": self.table_entry_bits,
            "residual(z)": self.residual_bits,
            "working": self.working_bits,
        }

    def __str__(self):
        lines = [f"sincos generator, output 2^-{self.out_frac_bits}:"]
        for name, bits in self.widths().items():
            lines.append(f"  {name:<18} {bits} bits")
        lines.append(
            f"  taylor terms       sin:{self.taylor_terms_sin} cos:{self.taylor_terms_cos}"
        )
        lines.append(f"  table entries      {self.table_entries}")
        lines.append(f"  verified faithful  {self.verified_faithful}")
        return "\n".join(lines)


class SinCosGenerator:
    """Parametric generator for faithful fixed-point sin/cos (pi-scaled)."""

    def __init__(self, out_frac_bits: int, in_frac_bits: int = None, guard_bits: int = 4):
        self.p = out_frac_bits
        self.w = in_frac_bits if in_frac_bits is not None else out_frac_bits
        if self.w < 4:
            raise ValueError("need at least 4 input bits (3 octant bits + payload)")
        self.g = guard_bits
        self.work = self.p + self.g

        # --- Parameter choice, all derived from the output format. -------
        # The input x in [0,2) carries w+1 bits; the top 3 select the
        # octant, so the reduced argument y in [0, 1/4) keeps w-2 bits.
        # Table address: balance table size (2^a entries) against the
        # residual magnitude |z| <= 2^-(a+3): pick a ~ p/3 like Fig. 1 does
        # for its sub-word A.
        self.a = min(max(2, (self.p + 2) // 3), self.w - 2)
        self.res_bits = self.w - 2 - self.a  # bits of y below the A field

        # Taylor orders from the error budget: need (pi*z)^k / k! < 2^-(work+1).
        zmax = Fraction(1, 1 << (self.a + 3))  # half an A cell: 2^-(a+3)
        self.sin_terms = self._terms_needed(zmax, odd=True)
        self.cos_terms = self._terms_needed(zmax, odd=False)

        self._build_tables()
        self.report = SinCosReport(
            out_frac_bits=self.p,
            in_frac_bits=self.w,
            table_address_bits=self.a,
            table_entry_bits=self.work + 1,
            residual_bits=self.res_bits,
            working_bits=self.work,
            taylor_terms_sin=self.sin_terms,
            taylor_terms_cos=self.cos_terms,
            table_entries=2 << self.a,
        )

    def _terms_needed(self, zmax: Fraction, odd: bool) -> int:
        """Smallest Taylor truncation with remainder below half a work ULP."""
        bound = Fraction(1, 1 << (self.work + 2))
        terms = 0
        k = 1 if odd else 0
        fact = 1
        for i in range(1, k + 1):
            fact *= i
        while True:
            terms += 1
            k_next = k + 2
            # Remainder bounded by the first dropped term.
            fact_next = fact
            for i in range(k + 1, k_next + 1):
                fact_next *= i
            dropped = (_PI * zmax) ** k_next / fact_next
            if dropped < bound:
                return terms
            k, fact = k_next, fact_next
            if terms > 8:  # pragma: no cover - safety
                return terms

    def _build_tables(self):
        self.sin_table: List[int] = []
        self.cos_table: List[int] = []
        for a_code in range(1 << self.a):
            a_mid = (Fraction(a_code) + Fraction(1, 2)) / (1 << self.a) / 4
            angle = _PI * a_mid
            self.sin_table.append(_round_nearest(self._sin_frac(angle), self.work))
            self.cos_table.append(_round_nearest(self._cos_frac(angle), self.work))

    @staticmethod
    def _sin_frac(x: Fraction, terms: int = 20) -> Fraction:
        total, term = Fraction(0), x
        for k in range(terms):
            total += term
            term *= -x * x / ((2 * k + 2) * (2 * k + 3))
        return total

    @staticmethod
    def _cos_frac(x: Fraction, terms: int = 20) -> Fraction:
        total, term = Fraction(0), Fraction(1)
        for k in range(terms):
            total += term
            term *= -x * x / ((2 * k + 1) * (2 * k + 2))
        return total

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, x_code: int) -> Tuple[int, int]:
        """Return ``(sin_code, cos_code)`` for input ``x = x_code * 2**-w``.

        The input covers ``x in [0, 2)`` (one full turn of ``pi * x``);
        output codes are scaled by ``2**-p`` and may be negative.
        """
        x_code &= (1 << (self.w + 1)) - 1
        octant = x_code >> (self.w - 2)
        y_code = x_code & ((1 << (self.w - 2)) - 1)

        # In odd octants the angle counts *down* from the next axis:
        # angle = (octant+1) * pi/4 - pi*y' with y' = 1/4 - y, so the same
        # [0, 1/4] evaluator serves after the octant symmetry step.
        if octant & 1:
            y_code = (1 << (self.w - 2)) - y_code  # y' in (0, 2^(w-2)]

        s, c = self._eval_octant(y_code)

        # Reconstruct by octant symmetry (swap / negate).
        swap = octant in (1, 2, 5, 6)
        if swap:
            s, c = c, s
        sin_neg = octant >= 4
        cos_neg = octant in (2, 3, 4, 5)
        return (-s if sin_neg else s), (-c if cos_neg else c)

    def _eval_octant(self, y_code: int) -> Tuple[int, int]:
        """sin/cos of ``pi * y`` for ``y = y_code * 2**-w in [0, 1/4]``."""
        if self.res_bits > 0:
            a_code = y_code >> self.res_bits
            z_code = y_code - ((a_code << self.res_bits) + (1 << (self.res_bits - 1)))
        else:
            a_code = y_code
            z_code = -1  # center offset of half an LSB, folded below
        if a_code >= (1 << self.a):  # y == exactly 1/4 after odd-octant fold
            # Fold into the last A cell: z grows by one full cell.
            a_code = (1 << self.a) - 1
            z_code += 1 << self.res_bits

        sin_a = self.sin_table[a_code]
        cos_a = self.cos_table[a_code]

        # pi * z on the working grid (z is signed, |z| <= 2^-(a+3)).
        # z = (z_code + maybe half an LSB) * 2^-w; round pi*z once onto the
        # 2^-work grid (one of the T boxes of Fig. 1).
        zc = Fraction(2 * z_code + (0 if self.res_bits else 1), 2)
        piz = _round_nearest(_PI * zc / (1 << self.w), self.work)

        sin_z, cos_z = self._taylor(piz)

        # sin(A+Z) = sinA cosZ + cosA sinZ ; cos(A+Z) = cosA cosZ - sinA sinZ
        W = self.work
        s = (sin_a * cos_z + cos_a * sin_z) >> W
        c = (cos_a * cos_z - sin_a * sin_z) >> W
        half = 1 << (self.g - 1)
        return (s + half) >> self.g, (c + half) >> self.g

    def _taylor(self, piz: int) -> Tuple[int, int]:
        """sin/cos of a small angle ``piz * 2**-work`` on the working grid."""
        W = self.work
        x = piz
        x2 = (x * x) >> W
        # sin: x - x^3/6 + x^5/120 ...
        sin_acc, term = 0, x
        k = 1
        for _ in range(self.sin_terms):
            sin_acc += term
            term = -((term * x2) >> W) // ((k + 1) * (k + 2))
            k += 2
        # cos: 1 - x^2/2 + x^4/24 ...
        cos_acc, term = 0, 1 << W
        k = 0
        for _ in range(self.cos_terms):
            cos_acc += term
            term = -((term * x2) >> W) // ((k + 1) * (k + 2))
            k += 2
        return sin_acc, cos_acc

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------
    def reference(self, x_code: int) -> Tuple[Fraction, Fraction]:
        x = Fraction(x_code, 1 << self.w)
        angle = _PI * x
        return self._sin_frac(angle, 24), self._cos_frac(angle, 24)

    def max_error_ulps(self, step: int = 1) -> float:
        worst = Fraction(0)
        u = ulp(self.p)
        for x_code in range(0, 1 << (self.w + 1), step):
            s, c = self.evaluate(x_code)
            rs, rc = self.reference(x_code)
            worst = max(worst, abs(Fraction(s, 1 << self.p) - rs), abs(Fraction(c, 1 << self.p) - rc))
        return float(worst / u)

    def verify_faithful(self, step: int = 1) -> bool:
        ok = self.max_error_ulps(step) < 1.0
        self.report.verified_faithful = ok
        return ok

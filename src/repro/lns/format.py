"""LNS format descriptors."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LNSFormat"]


@dataclass(frozen=True)
class LNSFormat:
    """A sign-magnitude-exponent logarithmic format.

    A value is ``(-1)^sign * 2^(E)`` where ``E`` is a signed fixed-point
    number with ``int_bits`` integer and ``frac_bits`` fraction bits.  The
    total storage is ``2 + int_bits + frac_bits`` (sign + E's sign + E),
    with the most negative ``E`` code reserved for zero.

    Attributes:
        int_bits: Integer bits of the exponent (dynamic range control —
            like the posit regime or float exponent).
        frac_bits: Fraction bits of the exponent (precision control).
    """

    int_bits: int
    frac_bits: int

    def __post_init__(self):
        if self.int_bits < 1 or self.frac_bits < 0:
            raise ValueError("need int_bits >= 1, frac_bits >= 0")

    @property
    def e_bits(self) -> int:
        """Width of the exponent field (two's complement)."""
        return 1 + self.int_bits + self.frac_bits

    @property
    def width(self) -> int:
        """Total storage width."""
        return 1 + self.e_bits

    @property
    def e_max(self) -> int:
        return (1 << (self.e_bits - 1)) - 1

    @property
    def e_min(self) -> int:
        """Most negative usable exponent code (one above the zero code)."""
        return -(1 << (self.e_bits - 1)) + 1

    @property
    def zero_code(self) -> int:
        """The reserved exponent code for value zero."""
        return -(1 << (self.e_bits - 1))

    @property
    def scale(self) -> int:
        """E's LSB weighs ``2**-frac_bits``."""
        return self.frac_bits

    def max_value(self) -> float:
        import math

        return math.ldexp(1.0, 0) * 2.0 ** (self.e_max / (1 << self.frac_bits))

    def min_positive(self) -> float:
        return 2.0 ** (self.e_min / (1 << self.frac_bits))

    def dynamic_range_decades(self) -> float:
        import math

        return (self.e_max - self.e_min) / (1 << self.frac_bits) * math.log10(2.0)

    def __str__(self):
        return f"lns<{self.int_bits}.{self.frac_bits}>"

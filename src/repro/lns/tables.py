"""Table-driven LNS addition using the Section II generators.

The Gaussian logarithm ``phi+(d) = log2(1 + 2^-d)`` is exactly the kind of
"continuously derivable function of one variable" Section II's function
approximators exist for.  :class:`LNSAdderTable` tabulates it with a
:class:`repro.generators.BipartiteTable` (with a plain-table fallback and
comparison), giving a hardware-honest LNS adder: beyond ``d_max`` the
correction is below half an exponent ULP and the big operand passes
through unchanged.
"""

from __future__ import annotations

import math
from fractions import Fraction

from ..generators import BipartiteTable, PlainTable
from .format import LNSFormat
from .value import LNS

__all__ = ["LNSAdderTable"]


def _phi_plus(d: Fraction) -> Fraction:
    """log2(1 + 2^-d) to ~2**-60, via floats (ample for table entries)."""
    return Fraction(math.log2(1.0 + 2.0 ** float(-d))).limit_denominator(10**18)


class LNSAdderTable:
    """A faithful phi+ table for same-sign LNS addition.

    ``d`` (the non-negative exponent difference, in exponent ULPs) indexes
    the table up to ``d_max = frac_bits + 1`` octaves — beyond that,
    ``phi+ < half an exponent ULP`` and the addition degenerates to the
    larger operand.
    """

    def __init__(self, fmt: LNSFormat, bipartite: bool = True):
        self.fmt = fmt
        f = fmt.frac_bits
        # Table input: d in [0, d_max), quantized to exponent ULPs.
        self.d_max_octaves = f + 1
        self.in_bits = max(1, (self.d_max_octaves << f).bit_length())
        span = 1 << self.in_bits

        def func(x: Fraction) -> Fraction:
            # x in [0,1) maps to d = x * span * 2^-f octaves.
            d = x * span / (1 << f)
            return _phi_plus(d)

        if bipartite and self.in_bits >= 6:
            self.table = BipartiteTable(func, in_bits=self.in_bits, out_frac_bits=f)
        else:
            self.table = PlainTable(func, in_bits=self.in_bits, out_frac_bits=f)
        self._span = span

    def phi_plus_code(self, d_code: int) -> int:
        """Rounded phi+ correction (in exponent ULPs) for difference ``d_code``."""
        if d_code >= self._span:
            return 0
        return self.table.lookup(d_code)

    def add(self, a: LNS, b: LNS) -> LNS:
        """Same-sign addition through the generated table."""
        if a.sign != b.sign:
            raise ValueError("table adder handles same-sign operands")
        if a.is_zero():
            return b
        if b.is_zero():
            return a
        big, small = (a, b) if a.e_code >= b.e_code else (b, a)
        d_code = big.e_code - small.e_code
        code = big.e_code + self.phi_plus_code(d_code)
        code = min(code, a.fmt.e_max)
        return LNS(a.fmt, big.sign, code)

    def table_bits(self) -> int:
        return self.table.table_bits()

    def max_error_vs_direct(self, samples: int = 2000, seed: int = 0) -> float:
        """Worst relative error of table-addition vs exact real addition."""
        import random

        rng = random.Random(seed)
        worst = 0.0
        for _ in range(samples):
            x = rng.uniform(0.01, 100.0)
            y = rng.uniform(0.01, 100.0)
            a = LNS.from_float(self.fmt, x)
            b = LNS.from_float(self.fmt, y)
            got = self.add(a, b).to_float()
            want = a.to_float() + b.to_float()
            worst = max(worst, abs(got - want) / want)
        return worst

"""Logarithmic number system (LNS) arithmetic.

The paper's introduction counts logarithmic data representations among the
edge-arithmetic alternatives (its reference [5] is a log-domain CNN
accelerator, and Mitchell-style log multipliers appear in
:mod:`repro.approx`).  This package provides a complete LNS:

* values are ``(-1)^s * 2^E`` with ``E`` a two's-complement fixed-point
  exponent — multiplication and division are exact *additions* of ``E``;
* addition/subtraction go through the Gaussian logarithms
  ``phi+(d) = log2(1 + 2^-d)`` and ``phi-(d) = log2(1 - 2^-d)``, either
  computed directly (:meth:`LNS.add`) or through a faithful table generated
  by :mod:`repro.generators` (:class:`LNSAdderTable`) — exactly the
  function-approximation use-case of Section II;
* the subtraction singularity at ``d -> 0`` is handled the way hardware
  does: exact cancellation detection plus a widened table segment.

>>> from repro.lns import LNSFormat, LNS
>>> fmt = LNSFormat(5, 8)
>>> x = LNS.from_float(fmt, 3.0)
>>> y = LNS.from_float(fmt, 4.0)
>>> round((x * y).to_float(), 2)   # multiplication is exact in the log domain
12.0
"""

from .format import LNSFormat
from .value import LNS
from .tables import LNSAdderTable

__all__ = ["LNSFormat", "LNS", "LNSAdderTable"]

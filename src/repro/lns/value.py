"""LNS values and arithmetic."""

from __future__ import annotations

import math

from .format import LNSFormat

__all__ = ["LNS"]


class LNS:
    """An immutable LNS value: sign + fixed-point exponent code.

    ``e_code`` is the integer exponent code (``E = e_code * 2**-frac_bits``)
    or the reserved zero code.
    """

    __slots__ = ("fmt", "sign", "e_code")

    def __init__(self, fmt: LNSFormat, sign: int, e_code: int):
        if not fmt.zero_code <= e_code <= fmt.e_max:
            raise ValueError(f"exponent code {e_code} out of range for {fmt}")
        object.__setattr__(self, "fmt", fmt)
        object.__setattr__(self, "sign", sign & 1)
        object.__setattr__(self, "e_code", e_code)

    def __setattr__(self, *a):  # pragma: no cover
        raise AttributeError("LNS is immutable")

    # ------------------------------------------------------------------
    @classmethod
    def zero(cls, fmt: LNSFormat) -> "LNS":
        return cls(fmt, 0, fmt.zero_code)

    @classmethod
    def one(cls, fmt: LNSFormat) -> "LNS":
        return cls(fmt, 0, 0)

    @classmethod
    def from_float(cls, fmt: LNSFormat, value: float) -> "LNS":
        """Round a float onto the LNS grid (nearest exponent code)."""
        if value == 0.0 or math.isnan(value):
            return cls.zero(fmt)
        sign = int(value < 0)
        e = math.log2(abs(value)) * (1 << fmt.frac_bits)
        code = int(round(e))
        code = max(fmt.e_min, min(fmt.e_max, code))  # saturate, never zero
        return cls(fmt, sign, code)

    def is_zero(self) -> bool:
        return self.e_code == self.fmt.zero_code

    def to_float(self) -> float:
        if self.is_zero():
            return 0.0
        v = 2.0 ** (self.e_code / (1 << self.fmt.frac_bits))
        return -v if self.sign else v

    # ------------------------------------------------------------------
    # Multiplicative operations: exact integer adds in the log domain.
    # ------------------------------------------------------------------
    def mul(self, other: "LNS") -> "LNS":
        self._check(other)
        if self.is_zero() or other.is_zero():
            return LNS.zero(self.fmt)
        code = self.e_code + other.e_code
        code = max(self.fmt.e_min, min(self.fmt.e_max, code))
        return LNS(self.fmt, self.sign ^ other.sign, code)

    def div(self, other: "LNS") -> "LNS":
        self._check(other)
        if other.is_zero():
            raise ZeroDivisionError("LNS division by zero")
        if self.is_zero():
            return LNS.zero(self.fmt)
        code = self.e_code - other.e_code
        code = max(self.fmt.e_min, min(self.fmt.e_max, code))
        return LNS(self.fmt, self.sign ^ other.sign, code)

    def sqrt(self) -> "LNS":
        """Square root: halve the exponent (a wire shift in hardware)."""
        if self.sign:
            raise ValueError("LNS sqrt of a negative value")
        if self.is_zero():
            return self
        half, rem = divmod(self.e_code, 2)
        if rem:  # halfway between codes: round to the even one
            half += half & 1
        return LNS(self.fmt, 0, half)

    # ------------------------------------------------------------------
    # Additive operations: Gaussian logarithms.
    # ------------------------------------------------------------------
    def add(self, other: "LNS") -> "LNS":
        """Addition via phi+/phi- computed in double precision."""
        self._check(other)
        if self.is_zero():
            return other
        if other.is_zero():
            return self
        big, small = (self, other) if self.e_code >= other.e_code else (other, self)
        d = (big.e_code - small.e_code) / (1 << self.fmt.frac_bits)
        if self.sign == other.sign:
            # phi+(d) = log2(1 + 2^-d)
            delta = math.log2(1.0 + 2.0**-d)
            code = big.e_code + int(round(delta * (1 << self.fmt.frac_bits)))
            code = min(code, self.fmt.e_max)
            return LNS(self.fmt, big.sign, code)
        # Opposite signs: subtraction.
        if big.e_code == small.e_code:
            return LNS.zero(self.fmt)  # exact cancellation
        # phi-(d) = log2(1 - 2^-d) < 0, singular at d -> 0.
        delta = math.log2(1.0 - 2.0**-d)
        code = big.e_code + int(round(delta * (1 << self.fmt.frac_bits)))
        if code < self.fmt.e_min:
            code = self.fmt.e_min  # saturate toward the smallest magnitude
        return LNS(self.fmt, big.sign, code)

    def sub(self, other: "LNS") -> "LNS":
        return self.add(other.negate())

    def negate(self) -> "LNS":
        if self.is_zero():
            return self
        return LNS(self.fmt, self.sign ^ 1, self.e_code)

    def _check(self, other: "LNS"):
        if self.fmt != other.fmt:
            raise ValueError("format mismatch")

    def __mul__(self, other):
        return self.mul(other)

    def __truediv__(self, other):
        return self.div(other)

    def __add__(self, other):
        return self.add(other)

    def __sub__(self, other):
        return self.sub(other)

    def __neg__(self):
        return self.negate()

    def __eq__(self, other):
        if not isinstance(other, LNS):
            return NotImplemented
        if self.is_zero() and other.is_zero():
            return True
        return (self.fmt, self.sign, self.e_code) == (other.fmt, other.sign, other.e_code)

    def __hash__(self):
        return hash((self.fmt, self.sign, self.e_code))

    def __repr__(self):
        return f"LNS({self.fmt}, {self.to_float()!r})"

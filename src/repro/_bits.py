"""Low-level bit-manipulation helpers shared by every number system.

All arithmetic in this library is done on unbounded Python integers so that
intermediate results are exact; these helpers cover the recurring idioms
(masking, two's complement, leading-zero counts, sticky-bit rounding) that
bit-exact arithmetic keeps needing.
"""

from __future__ import annotations

__all__ = [
    "mask",
    "bit",
    "bits_of",
    "from_bits",
    "to_twos_complement",
    "from_twos_complement",
    "bit_length",
    "count_leading_zeros",
    "count_leading_signs",
    "isqrt_rem",
    "round_to_nearest_even",
    "shift_right_sticky",
]


def mask(width: int) -> int:
    """Return an all-ones mask of ``width`` bits (``width`` may be 0)."""
    if width < 0:
        raise ValueError(f"mask width must be non-negative, got {width}")
    return (1 << width) - 1


def bit(value: int, index: int) -> int:
    """Return bit ``index`` (LSB = 0) of ``value`` as 0 or 1."""
    return (value >> index) & 1


def bits_of(value: int, width: int) -> list:
    """Return ``width`` bits of ``value`` as a list, MSB first."""
    return [(value >> i) & 1 for i in range(width - 1, -1, -1)]


def from_bits(bits) -> int:
    """Inverse of :func:`bits_of`: assemble an int from MSB-first bits."""
    out = 0
    for b in bits:
        out = (out << 1) | (b & 1)
    return out


def to_twos_complement(value: int, width: int) -> int:
    """Encode a signed integer into a ``width``-bit two's-complement pattern."""
    lo = -(1 << (width - 1))
    hi = (1 << (width - 1)) - 1
    if not lo <= value <= hi:
        raise OverflowError(f"{value} does not fit in {width}-bit two's complement")
    return value & mask(width)


def from_twos_complement(pattern: int, width: int) -> int:
    """Decode a ``width``-bit two's-complement pattern into a signed integer."""
    pattern &= mask(width)
    if pattern >> (width - 1):
        return pattern - (1 << width)
    return pattern


def bit_length(value: int) -> int:
    """Bit length of ``abs(value)`` (0 for 0)."""
    return abs(value).bit_length()


def count_leading_zeros(pattern: int, width: int) -> int:
    """Number of leading zero bits of ``pattern`` viewed as ``width`` bits."""
    pattern &= mask(width)
    return width - pattern.bit_length()


def count_leading_signs(pattern: int, width: int) -> int:
    """Run length of copies of the MSB at the top of ``pattern``.

    This is the "count leading zeros or ones" operation used by posit
    regime decoding: for ``0b0001...`` it returns 3, for ``0b1110...`` it
    returns 3 as well.
    """
    pattern &= mask(width)
    msb = pattern >> (width - 1)
    if msb:
        pattern = ~pattern & mask(width)
    return count_leading_zeros(pattern, width)


def isqrt_rem(value: int):
    """Return ``(s, r)`` with ``s*s + r == value`` and ``s`` the integer sqrt."""
    if value < 0:
        raise ValueError("isqrt_rem of a negative number")
    import math

    s = math.isqrt(value)
    return s, value - s * s


def shift_right_sticky(value: int, amount: int):
    """Shift ``value`` right by ``amount`` and return ``(shifted, sticky)``.

    ``sticky`` is 1 iff any shifted-out bit was non-zero; a negative amount
    shifts left (sticky 0). This is the primitive behind all correctly
    rounded operations: the exact result is first normalized to the target
    precision plus a guard bit, with the remaining information compressed
    into the sticky bit.
    """
    if amount <= 0:
        return value << (-amount), 0
    if amount >= value.bit_length() + 1:
        return 0, int(value != 0)
    sticky = int(value & mask(amount) != 0)
    return value >> amount, sticky


def round_to_nearest_even(value: int, cut: int) -> int:
    """Drop the low ``cut`` bits of non-negative ``value``, rounding RNE.

    Round-to-nearest with ties to even is the rounding used by both IEEE 754
    (on significands) and the posit standard (on encodings); implementing it
    once on integers keeps the two number systems consistent.
    """
    if cut <= 0:
        return value << (-cut)
    kept = value >> cut
    rem = value & mask(cut)
    half = 1 << (cut - 1)
    if rem > half or (rem == half and (kept & 1)):
        kept += 1
    return kept
